// Dynamic channel membership: lifecycle-aware link sets.
//
// The channel universe is fixed at construction — condition C2 requires
// both ends to number the channels identically, and renumbering a live
// set would tear that identification apart. Membership therefore
// enables and disables *slots* within the fixed universe:
//
//	active ──RemoveChannel/evict──▶ draining ──buffers empty──▶ removed
//	   ▲                                                           │
//	   └──────────────── AddChannel/reinstate ─────────────────────┘
//
// Sender side (Striper): removal cuts one last marker batch while the
// channel is still live (its final Sent position lets the receiver
// reconcile credits for everything transmitted before the departure),
// sends a MemberLeave delimiter down the departing channel itself, then
// disables the slot and announces the new live set on the survivors.
// The scheduler retires the slot's deficit, so by Theorem 3.2 the
// fairness band immediately re-forms over the survivors. Joins enable
// the slot with a zeroed deficit effective at the next round boundary
// and announce that join round, which is exactly the state the receiver
// needs to re-derive the Section 5 skip rule (skip c while r_c > G) for
// the newcomer — a join is a resync, and by the Theorem 5.1 argument
// FIFO delivery over the new set resumes within one marker period. The
// boundary deferral matters: the announcement then FIFO-precedes every
// packet of every service point the receiver must replay before
// reaching the newcomer's first service, so the receiver provably arms
// the skip rule before its simulation can scan past the slot.
//
// Receiver side: see the membership sections of resequencer.go.
//
// Announcements are full-bitmap and sequenced (packet.MemberBlock), and
// ride the marker cadence for a few batches after each transition:
// because every block carries the complete live set, a receiver that
// missed any prefix of announcements is fully repaired by whichever one
// arrives next.
package core

import (
	"errors"
	"fmt"

	"stripe/internal/channel"
	"stripe/internal/packet"
)

// MemberState is one slot's position in the membership lifecycle.
type MemberState uint8

const (
	// MemberActive: the slot is in the live set and scheduled normally.
	MemberActive MemberState = iota
	// MemberDraining: the slot has left the transmit set but the receiver
	// is still delivering packets buffered from it (receive side only —
	// the sender transitions atomically from active to removed).
	MemberDraining
	// MemberRemoved: the slot is out of the live set entirely.
	MemberRemoved
)

// String returns the conventional name of the state.
func (s MemberState) String() string {
	switch s {
	case MemberActive:
		return "active"
	case MemberDraining:
		return "draining"
	case MemberRemoved:
		return "removed"
	default:
		return fmt.Sprintf("memberstate(%d)", uint8(s))
	}
}

// memberAnnounceBatches is how many consecutive marker batches carry a
// re-broadcast of the latest membership announcement. Announcements are
// idempotent (sequenced, full bitmap), so redundancy costs one small
// control packet per channel per batch and buys loss resilience without
// an acknowledgement protocol.
const memberAnnounceBatches = 4

// memberUniverseMax is the largest channel universe dynamic membership
// supports, bounded by the announcement bitmap (packet.MemberBlock).
const memberUniverseMax = 64

// ErrNoActiveChannels is returned by Send when every slot has been
// removed from the live set.
var ErrNoActiveChannels = errors.New("core: no active channels in the live set")

// ErrMembershipUnsupported is returned by the membership methods when
// the configured scheduler cannot change its live set (it does not
// implement sched.Membership, or is round-less so the marker/announce
// machinery that makes membership changes safe is unavailable).
var ErrMembershipUnsupported = errors.New("core: scheduler does not support dynamic membership")

// ErrLastChannel is returned when a removal would empty the live set.
var ErrLastChannel = errors.New("core: cannot remove the last active channel")

// ChannelSendError reports a transport failure on one specific channel.
// Striper.Send wraps channel errors in it so callers (in particular the
// session health monitor) know which link failed without parsing error
// strings; errors.Is/As unwrap to the transport's own error.
type ChannelSendError struct {
	Channel int
	Err     error
}

func (e *ChannelSendError) Error() string {
	return fmt.Sprintf("core: send on channel %d: %v", e.Channel, e.Err)
}

func (e *ChannelSendError) Unwrap() error { return e.Err }

// sendFailed records a transport error against c's streak and wraps it.
//
//stripe:allowescape error wrapping on the channel-failure path only; the packet-delivered path never reaches it
func (st *Striper) sendFailed(c int, err error) error {
	st.errStreak[c]++
	return &ChannelSendError{Channel: c, Err: err}
}

// ActiveN returns the number of channels currently in the live set.
func (st *Striper) ActiveN() int { return st.activeN }

// Member returns slot c's lifecycle state. The sender has no draining
// state: removal retires the slot atomically.
func (st *Striper) Member(c int) MemberState {
	if c >= 0 && c < len(st.out) && st.active[c] {
		return MemberActive
	}
	return MemberRemoved
}

// ErrStreak returns the number of consecutive transport errors observed
// on channel c (data, marker, or announcement sends), reset to zero by
// any successful send. The session health monitor evicts on a
// configurable streak.
func (st *Striper) ErrStreak(c int) int64 {
	if c < 0 || c >= len(st.out) {
		return 0
	}
	return st.errStreak[c]
}

// membershipOK validates that the striper can change its live set.
func (st *Striper) membershipOK(c int) error {
	if st.mem == nil || st.rb == nil {
		return ErrMembershipUnsupported
	}
	if len(st.out) > memberUniverseMax {
		return fmt.Errorf("core: dynamic membership limited to %d channels, have %d", memberUniverseMax, len(st.out))
	}
	if c < 0 || c >= len(st.out) {
		return fmt.Errorf("core: channel %d out of range [0,%d)", c, len(st.out))
	}
	return nil
}

// RemoveChannel retires channel c from the live set: the scheduler
// stops selecting it, markers and resets are no longer cut for it, and
// the departure is announced to the receiver. The final marker batch is
// emitted while c is still live so the receiver holds c's exact final
// (round, deficit, Sent) position; the MemberLeave packet sent down c
// itself is a best-effort FIFO delimiter that lets a receiver on a
// still-healthy channel retire the slot the moment its buffer drains.
// Removing an already-removed channel is a no-op.
func (st *Striper) RemoveChannel(c int) error {
	if err := st.membershipOK(c); err != nil {
		return err
	}
	if !st.active[c] {
		return nil
	}
	if st.activeN <= 1 {
		return ErrLastChannel
	}
	st.emitBatch()
	st.mem.SetEnabled(c, false)
	if st.pendingJoin[c] != 0 {
		st.pendingJoin[c] = 0
		st.pendingJoins--
	}
	st.active[c] = false
	st.activeN--
	st.memberSeq++
	st.lastAnnounce = st.memberBlock(packet.MemberLeave, c, st.rb.Round())
	// Best-effort delimiter on the departing channel; it may already be
	// dead, which is fine — the survivors' announcements carry the same
	// (sequenced, full-bitmap) truth.
	_ = st.out[c].Send(packet.NewMember(st.lastAnnounce))
	st.errStreak[c] = 0
	st.announceLeft = memberAnnounceBatches
	st.broadcastMember()
	// Rounds only advance by serving enabled slots, so a removal must not
	// leave the scheduler empty while joins still wait on their round
	// boundary — they would never take effect. Flush them; the receiver's
	// skip rule absorbs the early first service as marker staleness.
	if st.pendingJoins != 0 && st.mem.ActiveN() == 0 {
		st.flushPendingJoins()
	}
	st.SyncObs()
	return nil
}

// AddChannel (re)admits channel c into the live set, optionally
// replacing its transport with tx (nil keeps the existing one — a
// reinstatement over the recovered link). The slot rejoins with a
// zeroed deficit at the next round boundary; that join round is
// announced so the receiver installs the skip rule for c (skip while
// r_c > G) and resumes FIFO delivery over the grown set within one
// marker period. Adding an already-active channel only swaps the
// transport. Returns the join round.
//
// The join must not take effect mid-round. The receiver's simulation
// runs eagerly on arrivals, so by the time the announcement lands it
// may already have scanned past slot c within the current round; were
// the sender to serve c this round, the receiver would deliver c's
// packets exactly one round late from then on. Deferring service to the
// next round boundary closes the race: every service point the
// receiver must replay before reaching (join, c) is evidenced only by
// packets the sender transmits *after* the announcement, which
// per-channel FIFO order delivers after the announcement — so the
// receiver provably admits the slot before its simulation can reach it
// (see applyPendingJoins).
func (st *Striper) AddChannel(c int, tx channel.Sender) (uint64, error) {
	if err := st.membershipOK(c); err != nil {
		return 0, err
	}
	if tx != nil {
		st.out[c] = tx
		st.batchOut[c], _ = tx.(channel.BatchSender)
	}
	if st.active[c] {
		if j := st.pendingJoin[c]; j != 0 {
			return j, nil
		}
		return st.rb.NextServiceRound(c), nil
	}
	st.active[c] = true
	st.activeN++
	st.errStreak[c] = 0
	join := st.rb.Round() + 1
	st.pendingJoin[c] = join
	st.pendingJoins++
	st.memberSeq++
	st.lastAnnounce = st.memberBlock(packet.MemberJoin, c, join)
	st.announceLeft = memberAnnounceBatches
	st.broadcastMember()
	// Cut markers immediately: the survivors' positions resynchronize the
	// receiver and reconcile credits without waiting out the marker
	// period. (The newcomer gets markers once its join round arrives.)
	st.emitBatch()
	st.SyncObs()
	return join, nil
}

// applyPendingJoins enables slots whose announced join round has
// arrived. Send calls it before selecting a channel, so a pending slot
// is enabled at the first service decision of its join round — the scan
// pointer is then at the round boundary, and the slot is served this
// round in its scan position exactly as announced.
func (st *Striper) applyPendingJoins() {
	r := st.rb.Round()
	for c, j := range st.pendingJoin {
		if j != 0 && r >= j {
			st.pendingJoin[c] = 0
			st.pendingJoins--
			st.mem.SetEnabled(c, true)
		}
	}
}

// flushPendingJoins enables every pending slot immediately, forgoing the
// round-boundary deferral. Used where waiting is impossible: a reset
// (both automatons restart at s0) and the removal corner where no other
// slot remains enabled to carry the rounds forward.
func (st *Striper) flushPendingJoins() {
	for c, j := range st.pendingJoin {
		if j != 0 {
			st.pendingJoin[c] = 0
			st.mem.SetEnabled(c, true)
		}
	}
	st.pendingJoins = 0
}

// ProbeChannel sends a MemberStatus announcement down channel c —
// active or not — and reports the transport outcome. The health monitor
// probes evicted channels this way: a status block is idempotent at the
// receiver (same bitmap, newer seq), so probing is side-effect-free,
// and a run of successful probes is the reinstatement signal.
func (st *Striper) ProbeChannel(c int) error {
	if err := st.membershipOK(c); err != nil {
		return err
	}
	st.memberSeq++
	mb := st.memberBlock(packet.MemberStatus, c, st.rb.Round())
	if st.active[c] {
		st.lastAnnounce = mb
	}
	err := st.out[c].Send(packet.NewMember(mb))
	if err != nil {
		st.errStreak[c]++
	} else {
		st.errStreak[c] = 0
	}
	return err
}

// memberBlock assembles an announcement of the current live set.
func (st *Striper) memberBlock(op packet.MemberOp, target int, round uint64) packet.MemberBlock {
	var bits uint64
	for c := range st.out {
		if st.active[c] {
			bits |= uint64(1) << uint(c) // membershipOK bounds the universe to 64 slots
		}
	}
	return packet.MemberBlock{
		Seq:    st.memberSeq,
		Op:     op,
		Target: uint32(target), // validated non-negative and < len(out) by membershipOK
		Round:  round,
		Active: bits,
		N:      uint32(len(st.out)), // bounded by memberUniverseMax
	}
}

// broadcastMember sends the latest announcement on every live channel.
//
//stripe:allowescape membership announcements allocate member packets; control-plane work on transitions and marker cadence only
func (st *Striper) broadcastMember() {
	for c := range st.out {
		if !st.active[c] {
			continue
		}
		if err := st.out[c].Send(packet.NewMember(st.lastAnnounce)); err != nil {
			st.errStreak[c]++
		} else {
			st.errStreak[c] = 0
		}
	}
}

// --- Receiver side ------------------------------------------------------

// MemberState returns slot c's lifecycle state as the receiver sees it.
func (r *Resequencer) MemberState(c int) MemberState {
	if c < 0 || c >= r.n || r.left[c] {
		return MemberRemoved
	}
	if r.leaving[c] {
		return MemberDraining
	}
	return MemberActive
}

// SetMaxBuffered retunes the total buffered-packet cap (see
// ResequencerConfig.MaxBuffered; zero means unbounded). Membership
// changes resize the live set, and sessions recompute the derived
// default cap for the surviving channels through this.
func (r *Resequencer) SetMaxBuffered(max int) {
	if max < 0 {
		max = 0
	}
	r.maxBuffered = max
	if max == 0 {
		r.overflow = false
	}
}

// memberOK validates that the receiver can change its live set. The
// round-based simulation needs a scheduler whose membership is mutable;
// the round-less causal simulation has no marker machinery to resync a
// joiner with, so membership is unsupported there. ModeNone and
// ModeSequence track membership without a scheduler.
func (r *Resequencer) memberOK(c int) error {
	if r.mode == ModeLogical && r.mem == nil {
		return ErrMembershipUnsupported
	}
	if c < 0 || c >= r.n {
		return fmt.Errorf("core: channel %d out of range [0,%d)", c, r.n)
	}
	return nil
}

// RemoveChannel locally begins channel c's retirement, without waiting
// for a peer announcement — the health monitor uses it when the link is
// observed dead from this end. Buffered packets still drain in delivery
// order; the slot is retired the moment its buffer empties (anything
// the simulation is still waiting for from c is, by the link being
// dead, lost — the skip rule and retirement declare it so). Removing a
// removed channel is a no-op; removing a draining one marks its stream
// complete so the drain can finish without a delimiter.
func (r *Resequencer) RemoveChannel(c int) error {
	if err := r.memberOK(c); err != nil {
		return err
	}
	if r.left[c] {
		return nil
	}
	// A dead link delivers nothing more, which is exactly what the leave
	// delimiter would have attested.
	r.delimited[c] = true
	if r.leaving[c] {
		if r.bufs[c].len() == 0 {
			r.retire(c)
		}
		return nil
	}
	r.beginLeaving(c)
	return nil
}

// AddChannel locally re-admits channel c, expecting the sender to first
// serve it in joinRound (from the peer's announcement or marker). The
// slot re-enters the simulation with a zeroed deficit and the skip rule
// armed at joinRound, which is exactly the marker-resync state of
// Section 5: FIFO delivery over the grown set resumes within one marker
// period (Theorem 5.1). Adding an active channel is a no-op.
func (r *Resequencer) AddChannel(c int, joinRound uint64) error {
	if err := r.memberOK(c); err != nil {
		return err
	}
	r.admit(c, joinRound)
	return nil
}

// applyMember applies one membership announcement. Blocks are sequenced
// and carry the full live-set bitmap, so only newer blocks apply and
// any single block repairs an arbitrarily long run of missed ones.
//
//stripe:allowescape cold membership control path: runs per announcement (transitions and marker cadence), not per packet
func (r *Resequencer) applyMember(m packet.MemberBlock) {
	if r.mode == ModeLogical && r.mem == nil {
		return // round-less causal simulation: membership unsupported
	}
	if int(m.N) != r.n {
		r.stats.BadMembers++ // foreign universe: mis-wired, do not apply
		return
	}
	if m.Seq <= r.memberSeq {
		return // stale or duplicate (re-broadcast) announcement
	}
	r.memberSeq = m.Seq
	for c := 0; c < r.n; c++ {
		if m.ActiveChannel(c) {
			r.admit(c, m.Round)
		} else if !r.left[c] && !r.leaving[c] {
			r.beginLeaving(c)
		}
	}
}

// admit (re)enters slot c into the live set. No-op when c is already
// active.
//
//stripe:allowescape cold membership control path: join transitions only
func (r *Resequencer) admit(c int, joinRound uint64) {
	if r.leaving[c] {
		// The channel flapped back before its drain completed. The old
		// buffered tail cannot be ordered consistently against the
		// sender's fresh join state, so finish the retirement first and
		// rejoin clean — the discarded tail is ordinary unrecovered loss.
		r.retire(c)
	}
	if !r.left[c] {
		return
	}
	r.left[c] = false
	r.delimited[c] = false
	if r.mem != nil {
		r.mem.SetEnabled(c, true)
	}
	if r.mode == ModeLogical && r.s != nil {
		// The join is a resync: skip c until the announced join round,
		// the same rule a future-round marker installs.
		r.marked[c] = true
		r.expect[c] = joinRound
		r.pendingHas[c] = false
		r.clearStale() // any staleness census spoke about the old set
	}
	r.stats.MemberJoins++
	r.obs.OnMemberJoin(c, joinRound)
	if r.onMembership != nil {
		r.onMembership(c, true)
	}
}

// beginLeaving starts slot c's departure. Modes that buffer drain in
// delivery order first; arrival-order mode retires immediately.
func (r *Resequencer) beginLeaving(c int) {
	if r.mode == ModeNone {
		r.retire(c)
		return
	}
	r.leaving[c] = true
	r.leavingN++
	if r.delimited[c] && r.bufs[c].len() == 0 {
		r.retire(c)
	}
}

// sweepLeaving retires draining slots whose streams are complete and
// whose buffers have emptied. Undelimited slots wait for their
// delimiter — their tail may still be in flight — and cannot wedge the
// simulation: the delivery scans retire a draining slot the moment they
// actually block on it.
func (r *Resequencer) sweepLeaving() {
	for c := 0; c < r.n; c++ {
		if r.leaving[c] && r.delimited[c] && r.bufs[c].len() == 0 {
			r.retire(c)
		}
	}
}

// retire completes slot c's removal: remaining buffered control is
// consumed (markers for their piggybacked credits), remaining buffered
// data — unreachable in order once the channel is gone — is declared
// lost, and the slot leaves the simulation. Every packet buffered from
// c is therefore either delivered in order (the drain path) or declared
// lost here; none is ever delivered out of order.
//
//stripe:allowescape cold membership control path: one retirement per departure
func (r *Resequencer) retire(c int) {
	var lost int64
	for {
		p, ok := r.bufs[c].pop()
		if !ok {
			break
		}
		switch p.Kind {
		case packet.Data:
			lost++
		case packet.Marker:
			if m, err := packet.MarkerOf(p); err == nil {
				r.stats.Markers++
				r.obs.OnMarkerConsumed(c)
				if r.onMarker != nil {
					r.onMarker(c, m)
				}
			} else {
				r.stats.BadMarkers++
				r.obs.OnBadMarker()
			}
		}
	}
	if r.leaving[c] {
		r.leaving[c] = false
		r.leavingN--
	}
	r.delimited[c] = false
	r.left[c] = true
	if r.mem != nil {
		r.mem.SetEnabled(c, false)
	}
	if r.mode == ModeLogical && r.s != nil {
		r.marked[c] = false
		r.expect[c] = 0
		r.pendingHas[c] = false
		r.clearStale()
	}
	r.stats.MemberDrains++
	r.stats.MemberLost += lost
	var round uint64
	if r.mode == ModeLogical && r.s != nil {
		round = r.s.Round()
	}
	r.obs.OnMemberDrain(c, round, lost)
	if r.onMembership != nil {
		r.onMembership(c, false)
	}
}
