package stripenet

// Address resolution for multi-access segments: the convergence-layer
// duty the paper assigns below IP ("for Ethernet interfaces, the
// convergence layer performs ARP"). The exchange is the classic
// request/reply: who-has <target IP> broadcast, is-at <mac> unicast
// reply, with opportunistic learning of the requester's mapping.

// ARP operation codes.
const (
	arpRequest = 1
	arpReply   = 2
)

// arpLen is the encoded ARP body: op, sender IP, sender MAC, target IP,
// target MAC.
const arpLen = 1 + 4 + 6 + 4 + 6

func encodeARP(op byte, senderIP Addr, senderMAC LinkAddr, targetIP Addr, targetMAC LinkAddr) []byte {
	b := make([]byte, arpLen)
	b[0] = op
	copy(b[1:5], senderIP[:])
	copy(b[5:11], senderMAC[:])
	copy(b[11:15], targetIP[:])
	copy(b[15:21], targetMAC[:])
	return b
}

func decodeARP(b []byte) (op byte, senderIP Addr, senderMAC LinkAddr, targetIP Addr, targetMAC LinkAddr, ok bool) {
	if len(b) < arpLen {
		return 0, Addr{}, LinkAddr{}, Addr{}, LinkAddr{}, false
	}
	op = b[0]
	copy(senderIP[:], b[1:5])
	copy(senderMAC[:], b[5:11])
	copy(targetIP[:], b[11:15])
	copy(targetMAC[:], b[15:21])
	return op, senderIP, senderMAC, targetIP, targetMAC, true
}

// sendARPRequest broadcasts a who-has for targetIP on NIC n.
func (h *Host) sendARPRequest(n *NIC, targetIP Addr) {
	n.transmit(Broadcast, TypeARP, encodeARP(arpRequest, n.addr, n.mac, targetIP, LinkAddr{}))
}

// handleARP processes a received ARP body on NIC n: learn the sender's
// mapping, flush any traffic waiting on it, and answer requests aimed
// at this interface.
func (h *Host) handleARP(n *NIC, body []byte) {
	op, senderIP, senderMAC, targetIP, _, ok := decodeARP(body)
	if !ok {
		h.drops++
		return
	}
	// Opportunistic learning in both directions.
	h.learn(n, senderIP, senderMAC)

	if op == arpRequest && targetIP == n.addr {
		n.transmit(senderMAC, TypeARP, encodeARP(arpReply, n.addr, n.mac, senderIP, senderMAC))
	}
}

// learn records a mapping and flushes traffic queued on it.
func (h *Host) learn(n *NIC, ip Addr, mac LinkAddr) {
	if h.arp[n.name][ip] == mac {
		return
	}
	h.arp[n.name][ip] = mac
	queued := h.pending[n.name][ip]
	if len(queued) == 0 {
		return
	}
	delete(h.pending[n.name], ip)
	for _, f := range queued {
		n.transmit(mac, f.typ, f.body)
	}
}

// ARPCacheLen reports the number of resolved entries on an interface,
// for tests.
func (h *Host) ARPCacheLen(iface string) int { return len(h.arp[iface]) }
