package stripenet

import (
	"fmt"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/netchan"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// FrameType is the link-layer demultiplexing codepoint. Striped traffic
// uses a distinct type, the paper's mechanism for telling striped
// packets and markers apart from ordinary traffic without touching the
// packets themselves.
type FrameType uint16

const (
	// TypeIP carries an ordinary IP packet.
	TypeIP FrameType = 0x0800
	// TypeARP carries an address-resolution request or reply — the
	// convergence-layer function the paper notes for multi-access
	// interfaces ("for Ethernet interfaces, the convergence layer
	// performs ARP").
	TypeARP FrameType = 0x0806
	// TypeStripe carries strIPe traffic: a netchan frame whose payload
	// is an unmodified IP packet, or a marker/credit/reset control
	// block.
	TypeStripe FrameType = 0x88B5
)

// LinkAddr is a 6-byte link-layer (MAC-style) address.
type LinkAddr [6]byte

// Broadcast is the all-stations link address.
var Broadcast = LinkAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-hex.
func (a LinkAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// macFor derives a deterministic locally administered link address from
// an interface's IP address.
func macFor(ip Addr) LinkAddr {
	return LinkAddr{0x02, 0x00, ip[0], ip[1], ip[2], ip[3]}
}

// frameHeaderLen is the Ethernet-style link header: destination and
// source link addresses plus the type field.
const frameHeaderLen = 14

// stripeOverhead is the netchan framing inside a TypeStripe frame for
// unmodified data packets (kind + flags).
const stripeOverhead = 2

// NIC is one attachment of a host to a point-to-point link or a LAN.
type NIC struct {
	name string
	addr Addr
	mac  LinkAddr
	mtu  int
	host *Host

	rxq  *channel.Queue // receive queue; impairments applied on ingress
	peer *NIC           // point-to-point peer, if any
	lan  *LAN           // attached LAN, if any

	strIP *StripeIface
	idx   int // member index within the stripe interface, -1 otherwise

	bytesSent int64
}

// Name returns the interface name.
func (n *NIC) Name() string { return n.name }

// Addr returns the interface's IP address.
func (n *NIC) Addr() Addr { return n.addr }

// LinkAddress returns the interface's link-layer address.
func (n *NIC) LinkAddress() LinkAddr { return n.mac }

// MTU returns the interface MTU (maximum IP packet, excluding the link
// header).
func (n *NIC) MTU() int { return n.mtu }

// BytesSent returns the link bytes transmitted on this NIC, for
// load-sharing measurements.
func (n *NIC) BytesSent() int64 { return n.bytesSent }

// Connect wires two NICs with a duplex point-to-point link using the
// given impairment configuration in each direction.
func Connect(a, b *NIC, imp channel.Impairments) {
	impB := imp
	impB.Seed = imp.Seed + 1
	a.rxq = channel.NewQueue(impB) // b -> a direction
	b.rxq = channel.NewQueue(imp)  // a -> b direction
	a.peer = b
	b.peer = a
}

// LAN is a multi-access broadcast segment (an Ethernet): every attached
// NIC can reach every other, frames are delivered FIFO per receiver,
// and loss/corruption apply per receiving port.
type LAN struct {
	name  string
	imp   channel.Impairments
	ports []*NIC
}

// NewLAN creates an empty segment.
func NewLAN(name string, imp channel.Impairments) *LAN {
	return &LAN{name: name, imp: imp}
}

// Attach joins a NIC to the segment.
func (l *LAN) Attach(n *NIC) error {
	if n.peer != nil || n.lan != nil {
		return fmt.Errorf("stripenet: %s/%s already connected", n.host.name, n.name)
	}
	imp := l.imp
	imp.Seed = l.imp.Seed + int64(len(l.ports))
	n.rxq = channel.NewQueue(imp)
	n.lan = l
	l.ports = append(l.ports, n)
	return nil
}

// transmit delivers a frame to matching ports (unicast or broadcast).
func (l *LAN) transmit(src *NIC, dst LinkAddr, buf []byte) {
	for _, p := range l.ports {
		if p == src {
			continue
		}
		if dst == Broadcast || p.mac == dst {
			_ = p.rxq.Send(packet.NewData(buf))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Route is a routing table entry. Host routes (PrefixLen 32) override
// network routes by longest-prefix match — the mechanism the paper uses
// to divert traffic for the receiver's addresses into the strIPe
// interface.
type Route struct {
	Dst       Addr
	PrefixLen int
	Iface     string
	// Gateway, when non-zero, is the next-hop address whose link
	// address is resolved instead of the destination's (for forwarding
	// through routers).
	Gateway Addr
}

// pendingFrame is traffic queued while ARP resolves its next hop.
type pendingFrame struct {
	typ  FrameType
	body []byte
}

// Host is a minimal IP endpoint: interfaces, a routing table, ARP
// state, and a receive upcall.
type Host struct {
	name       string
	nics       map[string]*NIC
	stripes    map[string]*StripeIface
	routes     []Route
	recv       func(h Header, payload []byte)
	nextID     uint16
	drops      int64
	forwarding bool

	// Per-interface ARP caches and resolution queues.
	arp     map[string]map[Addr]LinkAddr
	pending map[string]map[Addr][]pendingFrame
}

// NewHost returns an empty host.
func NewHost(name string) *Host {
	return &Host{
		name:    name,
		nics:    make(map[string]*NIC),
		stripes: make(map[string]*StripeIface),
		arp:     make(map[string]map[Addr]LinkAddr),
		pending: make(map[string]map[Addr][]pendingFrame),
	}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// AddNIC creates a physical interface.
func (h *Host) AddNIC(name string, addr Addr, mtu int) (*NIC, error) {
	if _, dup := h.nics[name]; dup {
		return nil, fmt.Errorf("stripenet: duplicate interface %q", name)
	}
	if mtu <= HeaderLen {
		return nil, fmt.Errorf("stripenet: MTU %d too small", mtu)
	}
	n := &NIC{name: name, addr: addr, mac: macFor(addr), mtu: mtu, host: h, idx: -1}
	h.nics[name] = n
	h.arp[name] = make(map[Addr]LinkAddr)
	h.pending[name] = make(map[Addr][]pendingFrame)
	return n, nil
}

// OnReceive installs the IP delivery upcall.
func (h *Host) OnReceive(fn func(hdr Header, payload []byte)) { h.recv = fn }

// AddRoute installs a route.
func (h *Host) AddRoute(dst Addr, prefixLen int, iface string) error {
	if prefixLen < 0 || prefixLen > 32 {
		return fmt.Errorf("stripenet: bad prefix length %d", prefixLen)
	}
	if _, ok := h.nics[iface]; !ok {
		if _, ok := h.stripes[iface]; !ok {
			return fmt.Errorf("stripenet: route references unknown interface %q", iface)
		}
	}
	h.routes = append(h.routes, Route{Dst: dst, PrefixLen: prefixLen, Iface: iface})
	return nil
}

// lookup returns the longest-prefix-match route for dst.
func (h *Host) lookup(dst Addr) (Route, bool) {
	best := -1
	var bestRoute Route
	d := dst.Uint32()
	for _, r := range h.routes {
		var mask uint32
		if r.PrefixLen > 0 {
			mask = ^uint32(0) << (32 - r.PrefixLen)
		}
		if r.Dst.Uint32()&mask == d&mask && r.PrefixLen > best {
			best = r.PrefixLen
			bestRoute = r
		}
	}
	return bestRoute, best >= 0
}

// NIC returns the named physical interface, or nil.
func (h *Host) NIC(name string) *NIC { return h.nics[name] }

// MTUOf returns the MTU of a named interface (physical or stripe).
func (h *Host) MTUOf(iface string) (int, error) {
	if n, ok := h.nics[iface]; ok {
		return n.mtu, nil
	}
	if s, ok := h.stripes[iface]; ok {
		return s.mtu, nil
	}
	return 0, fmt.Errorf("stripenet: unknown interface %q", iface)
}

// SendIP routes and transmits one IP packet. Striping is transparent:
// the caller only ever names a destination address.
func (h *Host) SendIP(src, dst Addr, proto uint8, payload []byte) error {
	r, ok := h.lookup(dst)
	if !ok {
		return ErrNoRoute
	}
	hdr := Header{TTL: 64, Proto: proto, ID: h.nextID, Src: src, Dst: dst}
	h.nextID++
	pkt := hdr.Encode(nil, payload)
	if s, ok := h.stripes[r.Iface]; ok {
		if len(pkt) > s.mtu {
			return ErrTooBig
		}
		return s.output(pkt)
	}
	n := h.nics[r.Iface]
	if len(pkt) > n.mtu {
		return ErrTooBig
	}
	nextHop := dst
	if r.Gateway != (Addr{}) {
		nextHop = r.Gateway
	}
	h.sendOn(n, nextHop, TypeIP, pkt)
	return nil
}

// sendOn transmits a frame toward the on-link IP address dstIP through
// NIC n, resolving the link address first (the convergence layer). On a
// LAN an unresolved address triggers an ARP exchange and the frame is
// queued until the reply arrives.
func (h *Host) sendOn(n *NIC, dstIP Addr, t FrameType, body []byte) {
	mac, ok := h.resolve(n, dstIP)
	if !ok {
		h.pending[n.name][dstIP] = append(h.pending[n.name][dstIP], pendingFrame{typ: t, body: body})
		h.sendARPRequest(n, dstIP)
		return
	}
	n.transmit(mac, t, body)
}

// resolve maps an on-link IP to a link address. Point-to-point links
// need no resolution.
func (h *Host) resolve(n *NIC, dstIP Addr) (LinkAddr, bool) {
	if n.peer != nil {
		return n.peer.mac, true
	}
	mac, ok := h.arp[n.name][dstIP]
	return mac, ok
}

// transmit puts a framed payload on the wire.
func (n *NIC) transmit(dst LinkAddr, t FrameType, body []byte) {
	buf := make([]byte, frameHeaderLen+len(body))
	copy(buf[0:6], dst[:])
	copy(buf[6:12], n.mac[:])
	buf[12] = byte(t >> 8)
	buf[13] = byte(t)
	copy(buf[frameHeaderLen:], body)
	n.bytesSent += int64(len(buf))
	switch {
	case n.peer != nil:
		_ = n.peer.rxq.Send(packet.NewData(buf))
	case n.lan != nil:
		n.lan.transmit(n, dst, buf)
	default:
		n.host.drops++
	}
}

// Poll advances the network until quiescent: it repeatedly drains every
// NIC's receive queue into its host. Hosts in the set are polled
// together so striped traffic flows end to end deterministically.
func Poll(hosts ...*Host) {
	for {
		moved := false
		for _, h := range hosts {
			for _, n := range h.nics {
				if n.rxq == nil {
					continue
				}
				for {
					p, ok := n.rxq.Recv()
					if !ok {
						break
					}
					moved = true
					n.receiveFrame(p.Payload)
				}
			}
		}
		if !moved {
			return
		}
	}
}

// receiveFrame demultiplexes an arriving link frame.
func (n *NIC) receiveFrame(buf []byte) {
	if len(buf) < frameHeaderLen {
		n.host.drops++
		return
	}
	var dst LinkAddr
	copy(dst[:], buf[0:6])
	if dst != Broadcast && dst != n.mac {
		return // not for us (shared segment)
	}
	t := FrameType(buf[12])<<8 | FrameType(buf[13])
	body := buf[frameHeaderLen:]
	switch t {
	case TypeIP:
		n.host.deliverIP(body)
	case TypeARP:
		n.host.handleARP(n, body)
	case TypeStripe:
		if n.strIP == nil {
			n.host.drops++
			return
		}
		p, err := netchan.DecodeFrame(body)
		if err != nil {
			n.host.drops++
			return
		}
		n.strIP.input(n.idx, p)
	default:
		n.host.drops++
	}
}

// deliverIP validates an IP packet, then delivers it locally or (for a
// forwarding host) routes it onward.
func (h *Host) deliverIP(pkt []byte) {
	hdr, payload, err := DecodeHeader(pkt)
	if err != nil {
		h.drops++
		return
	}
	if hdr.TTL == 0 {
		h.drops++
		return
	}
	if !h.localAddr(hdr.Dst) {
		if h.forwarding {
			h.forward(hdr, payload)
		} else {
			h.drops++
		}
		return
	}
	if h.recv != nil {
		h.recv(hdr, payload)
	}
}

// Drops returns the count of frames or packets the host discarded.
func (h *Host) Drops() int64 { return h.drops }

// StripeIface is the virtual IP interface of Section 6.1: a convergence
// layer that stripes whole IP packets over member NICs with SRR and
// reassembles the FIFO stream with logical reception.
type StripeIface struct {
	name    string
	host    *Host
	members []*NIC
	peers   []Addr // per-member peer IPs (zero Addr = point-to-point)
	mtu     int
	striper *core.Striper
	reseq   *core.Resequencer
}

// StripeConfig configures a strIPe interface.
type StripeConfig struct {
	// Members are the physical interfaces to stripe over.
	Members []string
	// Quanta are the SRR quanta, one per member, typically proportional
	// to link bandwidth and at least the interface MTU.
	Quanta []int64
	// Markers is the marker policy for resynchronization.
	Markers core.MarkerPolicy
	// Peers optionally names the remote end's IP address on each member
	// link, for members attached to multi-access LANs (the convergence
	// layer ARPs for them). Omit for point-to-point members.
	Peers []Addr
}

// memberSender adapts a NIC to channel.Sender for the striper: each
// striped packet travels as a TypeStripe frame to the member's peer.
type memberSender struct {
	s   *StripeIface
	n   *NIC
	idx int
}

func (m memberSender) Send(p *packet.Packet) error {
	body := netchan.EncodeFrame(nil, p)
	peer := m.s.peers[m.idx]
	if peer == (Addr{}) && m.n.peer == nil && m.n.lan != nil {
		// LAN member without a configured peer: broadcast (correct but
		// noisy; configure Peers for unicast).
		m.n.transmit(Broadcast, TypeStripe, body)
		return nil
	}
	m.s.host.sendOn(m.n, peer, TypeStripe, body)
	return nil
}

// AddStripeIface creates the virtual interface on the host. The
// interface MTU is the minimum member MTU less the stripe framing
// overhead.
func (h *Host) AddStripeIface(name string, cfg StripeConfig) (*StripeIface, error) {
	if _, dup := h.stripes[name]; dup {
		return nil, fmt.Errorf("stripenet: duplicate interface %q", name)
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("stripenet: stripe interface needs members")
	}
	if len(cfg.Quanta) != len(cfg.Members) {
		return nil, fmt.Errorf("stripenet: %d quanta for %d members", len(cfg.Quanta), len(cfg.Members))
	}
	if len(cfg.Peers) != 0 && len(cfg.Peers) != len(cfg.Members) {
		return nil, fmt.Errorf("stripenet: %d peers for %d members", len(cfg.Peers), len(cfg.Members))
	}
	s := &StripeIface{name: name, host: h}
	s.peers = make([]Addr, len(cfg.Members))
	copy(s.peers, cfg.Peers)
	mtu := 0
	for i, mn := range cfg.Members {
		n, ok := h.nics[mn]
		if !ok {
			return nil, fmt.Errorf("stripenet: unknown member %q", mn)
		}
		if n.strIP != nil {
			return nil, fmt.Errorf("stripenet: member %q already striped", mn)
		}
		n.strIP = s
		n.idx = i
		s.members = append(s.members, n)
		if mtu == 0 || n.mtu < mtu {
			mtu = n.mtu
		}
	}
	s.mtu = mtu - stripeOverhead
	senders := make([]channel.Sender, len(s.members))
	for i, n := range s.members {
		senders[i] = memberSender{s: s, n: n, idx: i}
	}
	striper, err := core.NewStriper(core.StriperConfig{
		Sched:    sched.MustSRR(cfg.Quanta),
		Channels: senders,
		Markers:  cfg.Markers,
	})
	if err != nil {
		return nil, err
	}
	reseq, err := core.NewResequencer(core.ResequencerConfig{
		Sched: sched.MustSRR(cfg.Quanta),
		Mode:  core.ModeLogical,
	})
	if err != nil {
		return nil, err
	}
	s.striper = striper
	s.reseq = reseq
	h.stripes[name] = s
	return s, nil
}

// MTU returns the interface MTU (minimum member MTU minus framing).
func (s *StripeIface) MTU() int { return s.mtu }

// output stripes one IP packet over the members.
func (s *StripeIface) output(ipPkt []byte) error {
	return s.striper.Send(packet.NewData(ipPkt))
}

// input accepts a striped frame from member index idx and delivers any
// packets the resequencer releases.
func (s *StripeIface) input(idx int, p *packet.Packet) {
	s.reseq.Arrive(idx, p)
	for {
		out, ok := s.reseq.Next()
		if !ok {
			return
		}
		s.host.deliverIP(out.Payload)
	}
}

// Stats exposes the receive-side resequencer counters.
func (s *StripeIface) Stats() core.ResequencerStats { return s.reseq.Stats() }
