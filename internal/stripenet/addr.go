// Package stripenet implements the paper's Section 6.1 architectural
// framework: transparent striping of IP packets across multiple data
// link interfaces via a virtual "strIPe" interface that sits between IP
// and the real interfaces.
//
// The model mirrors the paper's NetBSD arrangement:
//
//   - Hosts run a small IP layer with a routing table in which host
//     routes override network routes. Pointing the host routes for the
//     receiver's addresses at the strIPe interface diverts traffic into
//     the striping layer with no change to IP itself.
//   - The strIPe interface is an IP convergence layer: on output it runs
//     the SRR striper over its member links; on input the member links
//     demultiplex striped frames to the resequencer by a distinct frame
//     type (the codepoint), and the reassembled FIFO stream is handed
//     back to IP.
//   - Data packets (the full IP datagrams) are carried verbatim inside
//     link frames; markers travel as control frames on the same links.
//   - The strIPe interface's MTU is the minimum of its members' MTUs,
//     the restriction the paper notes for any striping scheme that does
//     not fragment internally.
//
// Links here are point-to-point (the convergence/ARP step is the
// identity); the paper's multi-access Ethernets differ only in needing
// an address-resolution table, which is orthogonal to striping.
package stripenet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4-style address.
type Addr [4]byte

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var parts [4]int
	n := 0
	cur := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if cur < 0 || n >= 4 {
				return a, fmt.Errorf("stripenet: bad address %q", s)
			}
			parts[n] = cur
			n++
			cur = -1
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return a, fmt.Errorf("stripenet: bad address %q", s)
		}
		if cur < 0 {
			cur = 0
		}
		cur = cur*10 + int(c-'0')
		if cur > 255 {
			return a, fmt.Errorf("stripenet: bad address %q", s)
		}
	}
	if n != 4 {
		return a, fmt.Errorf("stripenet: bad address %q", s)
	}
	for i := range a {
		a[i] = byte(parts[i])
	}
	return a, nil
}

// MustAddr is ParseAddr that panics; for literals in tests and examples.
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian integer (for prefix
// matching).
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// HeaderLen is the encoded size of the IP-like header.
const HeaderLen = 20

// Header is a simplified IPv4-style packet header: version/TTL/protocol,
// total length, an ID field, source and destination addresses, and an
// internet checksum over the header.
type Header struct {
	TTL      uint8
	Proto    uint8
	ID       uint16
	TotalLen uint16
	Src, Dst Addr
}

// Errors returned by header decoding and the IP layer.
var (
	ErrHeaderTooShort = errors.New("stripenet: header too short")
	ErrBadChecksum    = errors.New("stripenet: header checksum mismatch")
	ErrBadVersion     = errors.New("stripenet: bad version")
	ErrNoRoute        = errors.New("stripenet: no route to host")
	ErrTooBig         = errors.New("stripenet: packet exceeds interface MTU")
	ErrTTLExpired     = errors.New("stripenet: TTL expired")
)

const headerVersion = 4

// Encode appends the header followed by the payload, computing
// TotalLen and the checksum.
func (h *Header) Encode(dst []byte, payload []byte) []byte {
	total := HeaderLen + len(payload)
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen)...)
	b := dst[off:]
	b[0] = headerVersion<<4 | (HeaderLen / 4)
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], 0) // flags/fragment: unused
	b[8] = h.TTL
	b[9] = h.Proto
	// checksum at [10:12] computed below
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], internetChecksum(b[:HeaderLen]))
	return append(dst, payload...)
}

// DecodeHeader parses and validates a packet's header, returning the
// header and the payload (aliasing b).
func DecodeHeader(b []byte) (Header, []byte, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, nil, ErrHeaderTooShort
	}
	if b[0]>>4 != headerVersion {
		return h, nil, ErrBadVersion
	}
	if internetChecksum(b[:HeaderLen]) != 0 {
		return h, nil, ErrBadChecksum
	}
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) > len(b) || int(h.TotalLen) < HeaderLen {
		return h, nil, ErrHeaderTooShort
	}
	return h, b[HeaderLen:h.TotalLen], nil
}

// internetChecksum is the ones-complement sum used by IP. Over a header
// whose checksum field is zero it yields the checksum; over a header
// including a valid checksum it yields zero.
func internetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
