package stripenet

// IP forwarding: the paper's channel endpoints "could be workstations,
// switches, routers, or bridges", and a natural deployment stripes the
// trunk between two routers. Enabling forwarding turns a Host into a
// router: packets not addressed to a local interface are re-routed out
// (possibly via a strIPe interface) with the TTL decremented, and
// routes may name a gateway whose link address is resolved instead of
// the final destination's.

// EnableForwarding makes the host forward transit packets.
func (h *Host) EnableForwarding() { h.forwarding = true }

// AddRouteVia installs a route through a gateway on the named
// interface: matching packets are sent to the gateway's link address
// rather than resolved per destination.
func (h *Host) AddRouteVia(dst Addr, prefixLen int, iface string, gateway Addr) error {
	if err := h.AddRoute(dst, prefixLen, iface); err != nil {
		return err
	}
	h.routes[len(h.routes)-1].Gateway = gateway
	return nil
}

// localAddr reports whether ip is one of the host's interface
// addresses.
func (h *Host) localAddr(ip Addr) bool {
	for _, n := range h.nics {
		if n.addr == ip {
			return true
		}
	}
	return false
}

// forward re-routes a transit packet. The header's TTL is decremented
// and its checksum recomputed (the packet is otherwise untouched; note
// this is IP behaving normally *above* the striping layer, not the
// striping layer modifying anything).
func (h *Host) forward(hdr Header, payload []byte) {
	if hdr.TTL <= 1 {
		h.drops++
		return
	}
	r, ok := h.lookup(hdr.Dst)
	if !ok {
		h.drops++
		return
	}
	hdr.TTL--
	pkt := hdr.Encode(nil, payload)
	if s, ok := h.stripes[r.Iface]; ok {
		if len(pkt) > s.mtu {
			h.drops++
			return
		}
		if err := s.output(pkt); err != nil {
			h.drops++
		}
		return
	}
	n := h.nics[r.Iface]
	if len(pkt) > n.mtu {
		h.drops++
		return
	}
	nextHop := hdr.Dst
	if r.Gateway != (Addr{}) {
		nextHop = r.Gateway
	}
	h.sendOn(n, nextHop, TypeIP, pkt)
}
