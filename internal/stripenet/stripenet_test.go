package stripenet

import (
	"bytes"
	"fmt"
	"testing"

	"stripe/internal/channel"
	"stripe/internal/core"
)

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "10.1.2.3" {
		t.Fatalf("round trip %q", a.String())
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3."} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) succeeded", bad)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{TTL: 64, Proto: 17, ID: 42, Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2")}
	payload := []byte("hello stripe")
	pkt := h.Encode(nil, payload)
	got, pl, err := DecodeHeader(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != 64 || got.Proto != 17 || got.ID != 42 || got.Src != h.Src || got.Dst != h.Dst {
		t.Fatalf("header = %+v", got)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatal("payload mismatch")
	}
	if int(got.TotalLen) != len(pkt) {
		t.Fatalf("TotalLen = %d, want %d", got.TotalLen, len(pkt))
	}
}

func TestHeaderChecksumDetectsCorruption(t *testing.T) {
	h := Header{TTL: 64, Proto: 6, Src: MustAddr("1.2.3.4"), Dst: MustAddr("5.6.7.8")}
	pkt := h.Encode(nil, []byte("x"))
	pkt[13] ^= 0x40 // flip a source-address bit
	if _, _, err := DecodeHeader(pkt); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
	if _, _, err := DecodeHeader(pkt[:10]); err != ErrHeaderTooShort {
		t.Fatalf("short: %v", err)
	}
	pkt2 := h.Encode(nil, nil)
	pkt2[0] = 0x65 // version 6
	if _, _, err := DecodeHeader(pkt2); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
}

// buildPair wires two hosts with two parallel links and a strIPe
// interface on each, mirroring the paper's testbed topology
// (two workstations, Ethernet + ATM).
func buildPair(t *testing.T, imp channel.Impairments, markers core.MarkerPolicy) (a, b *Host) {
	t.Helper()
	a = NewHost("A")
	b = NewHost("B")
	for i := 0; i < 2; i++ {
		an, err := a.AddNIC(fmt.Sprintf("link%d", i), MustAddr(fmt.Sprintf("10.%d.0.1", i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := b.AddNIC(fmt.Sprintf("link%d", i), MustAddr(fmt.Sprintf("10.%d.0.2", i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		ci := imp
		ci.Seed = imp.Seed + int64(i*100)
		Connect(an, bn, ci)
	}
	cfg := StripeConfig{
		Members: []string{"link0", "link1"},
		Quanta:  []int64{1500, 1500},
		Markers: markers,
	}
	if _, err := a.AddStripeIface("stripe0", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddStripeIface("stripe0", cfg); err != nil {
		t.Fatal(err)
	}
	// Host routes for the peer's addresses point at the stripe
	// interface (host routes override network routes).
	for i := 0; i < 2; i++ {
		if err := a.AddRoute(MustAddr(fmt.Sprintf("10.%d.0.2", i)), 32, "stripe0"); err != nil {
			t.Fatal(err)
		}
		if err := b.AddRoute(MustAddr(fmt.Sprintf("10.%d.0.1", i)), 32, "stripe0"); err != nil {
			t.Fatal(err)
		}
	}
	return a, b
}

// TestTransparentStripingFIFO sends a stream of IP packets through the
// strIPe interface and checks transparent, in-order, loss-free delivery
// plus load sharing across both links.
func TestTransparentStripingFIFO(t *testing.T) {
	a, b := buildPair(t, channel.Impairments{}, core.MarkerPolicy{Every: 8, Position: 0})
	var got [][]byte
	b.OnReceive(func(hdr Header, payload []byte) {
		if hdr.Proto != 99 {
			t.Errorf("proto = %d", hdr.Proto)
		}
		got = append(got, append([]byte(nil), payload...))
	})
	const n = 500
	src, dst := MustAddr("10.0.0.1"), MustAddr("10.0.0.2")
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("packet-%05d-%s", i, bytes.Repeat([]byte{'x'}, i%1200)))
		if err := a.SendIP(src, dst, 99, payload); err != nil {
			t.Fatal(err)
		}
		Poll(a, b)
	}
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	for i, pl := range got {
		if want := fmt.Sprintf("packet-%05d-", i); string(pl[:len(want)]) != want {
			t.Fatalf("packet %d out of order: %q", i, pl[:20])
		}
	}
	// Both links must have carried a comparable share of bytes.
	var sent [2]int64
	for i, name := range []string{"link0", "link1"} {
		sent[i] = a.nics[name].BytesSent()
	}
	ratio := float64(sent[0]) / float64(sent[1])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("load imbalance: %d vs %d bytes", sent[0], sent[1])
	}
	if a.Drops()+b.Drops() != 0 {
		t.Fatalf("unexpected drops: %d %d", a.Drops(), b.Drops())
	}
}

// TestStripeRecoversFromLinkLoss checks IP-level quasi-FIFO with marker
// recovery: under link loss packets are dropped and occasionally
// reordered, but once the loss process ends delivery returns to FIFO.
func TestStripeRecoversFromLinkLoss(t *testing.T) {
	// Loss on both links for the whole run; we then verify that the
	// tail sent after the (deterministic, seeded) loss process ends is
	// in order. Easiest: burst loss confined to the early stream by
	// sending a lossy prefix through impaired links is not possible with
	// static impairments, so instead verify the weaker end-to-end facts:
	// no crash, bounded reordering, markers consumed, and that with loss
	// p the delivered fraction is ~1-p.
	a, b := buildPair(t, channel.Impairments{Loss: 0.2, Seed: 7}, core.MarkerPolicy{Every: 4, Position: 0})
	var ids []int
	b.OnReceive(func(hdr Header, payload []byte) {
		var id int
		fmt.Sscanf(string(payload), "pkt-%d", &id)
		ids = append(ids, id)
	})
	const n = 2000
	src, dst := MustAddr("10.0.0.1"), MustAddr("10.0.0.2")
	for i := 0; i < n; i++ {
		if err := a.SendIP(src, dst, 1, []byte(fmt.Sprintf("pkt-%d", i))); err != nil {
			t.Fatal(err)
		}
		Poll(a, b)
	}
	frac := float64(len(ids)) / n
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("delivered fraction %.3f, want ~0.8", frac)
	}
	st := b.stripes["stripe0"].Stats()
	if st.Markers == 0 {
		t.Fatal("no markers consumed")
	}
	if st.Resyncs == 0 {
		t.Fatal("no resynchronizations under 20%% loss")
	}
}

// TestMTURule checks the Section 6.1 MTU restriction: the strIPe
// interface MTU is the minimum member MTU (less framing), and oversized
// sends fail cleanly.
func TestMTURule(t *testing.T) {
	a := NewHost("A")
	n1, err := a.AddNIC("big", MustAddr("10.0.0.1"), 9000)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := a.AddNIC("small", MustAddr("10.1.0.1"), 1500)
	if err != nil {
		t.Fatal(err)
	}
	b := NewHost("B")
	m1, _ := b.AddNIC("big", MustAddr("10.0.0.2"), 9000)
	m2, _ := b.AddNIC("small", MustAddr("10.1.0.2"), 1500)
	Connect(n1, m1, channel.Impairments{})
	Connect(n2, m2, channel.Impairments{})
	s, err := a.AddStripeIface("stripe0", StripeConfig{
		Members: []string{"big", "small"},
		Quanta:  []int64{9000, 1500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.MTU() >= 1500 || s.MTU() < 1400 {
		t.Fatalf("stripe MTU = %d, want just under 1500", s.MTU())
	}
	if err := a.AddRoute(MustAddr("10.0.0.2"), 32, "stripe0"); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 5000)
	if err := a.SendIP(MustAddr("10.0.0.1"), MustAddr("10.0.0.2"), 1, big); err != ErrTooBig {
		t.Fatalf("oversized send: %v, want ErrTooBig", err)
	}
}

// TestHostRouteOverridesNetworkRoute checks longest-prefix matching.
func TestHostRouteOverridesNetworkRoute(t *testing.T) {
	a := NewHost("A")
	n1, _ := a.AddNIC("eth0", MustAddr("10.0.0.1"), 1500)
	n2, _ := a.AddNIC("eth1", MustAddr("10.0.1.1"), 1500)
	b := NewHost("B")
	m1, _ := b.AddNIC("eth0", MustAddr("10.0.0.2"), 1500)
	m2, _ := b.AddNIC("eth1", MustAddr("10.0.1.2"), 1500)
	Connect(n1, m1, channel.Impairments{})
	Connect(n2, m2, channel.Impairments{})

	// Network route sends 10.0.0.0/16 via eth0; a host route overrides
	// one address to eth1.
	if err := a.AddRoute(MustAddr("10.0.0.0"), 16, "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRoute(MustAddr("10.0.1.2"), 32, "eth1"); err != nil {
		t.Fatal(err)
	}
	var viaCount int
	b.OnReceive(func(hdr Header, payload []byte) { viaCount++ })

	if err := a.SendIP(MustAddr("10.0.0.1"), MustAddr("10.0.0.2"), 1, []byte("via eth0")); err != nil {
		t.Fatal(err)
	}
	if err := a.SendIP(MustAddr("10.0.1.1"), MustAddr("10.0.1.2"), 1, []byte("via eth1")); err != nil {
		t.Fatal(err)
	}
	Poll(a, b)
	if viaCount != 2 {
		t.Fatalf("delivered %d", viaCount)
	}
	if n1.BytesSent() == 0 || n2.BytesSent() == 0 {
		t.Fatalf("routing did not use both interfaces: %d %d", n1.BytesSent(), n2.BytesSent())
	}
	// No route at all.
	if err := a.SendIP(MustAddr("10.0.0.1"), MustAddr("99.9.9.9"), 1, nil); err != ErrNoRoute {
		t.Fatalf("unrouted send: %v", err)
	}
}

// TestConfigValidation covers interface setup errors.
func TestConfigValidation(t *testing.T) {
	a := NewHost("A")
	if _, err := a.AddNIC("x", MustAddr("1.1.1.1"), 10); err == nil {
		t.Error("tiny MTU accepted")
	}
	if _, err := a.AddNIC("e0", MustAddr("1.1.1.1"), 1500); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddNIC("e0", MustAddr("1.1.1.2"), 1500); err == nil {
		t.Error("duplicate NIC accepted")
	}
	if err := a.AddRoute(MustAddr("1.1.1.0"), 24, "nope"); err == nil {
		t.Error("route to unknown interface accepted")
	}
	if err := a.AddRoute(MustAddr("1.1.1.0"), 40, "e0"); err == nil {
		t.Error("bad prefix accepted")
	}
	if _, err := a.AddStripeIface("s0", StripeConfig{}); err == nil {
		t.Error("empty stripe config accepted")
	}
	if _, err := a.AddStripeIface("s0", StripeConfig{Members: []string{"e0"}, Quanta: []int64{1, 2}}); err == nil {
		t.Error("quanta mismatch accepted")
	}
	if _, err := a.AddStripeIface("s0", StripeConfig{Members: []string{"ghost"}, Quanta: []int64{1500}}); err == nil {
		t.Error("unknown member accepted")
	}
	if _, err := a.AddStripeIface("s0", StripeConfig{Members: []string{"e0"}, Quanta: []int64{1500}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddStripeIface("s1", StripeConfig{Members: []string{"e0"}, Quanta: []int64{1500}}); err == nil {
		t.Error("double-striped member accepted")
	}
}

// TestBidirectionalStriping runs traffic both directions through the
// same strIPe interfaces simultaneously; each direction has its own
// striper/resequencer pair and both deliver FIFO.
func TestBidirectionalStriping(t *testing.T) {
	a, b := buildPair(t, channel.Impairments{}, core.MarkerPolicy{Every: 4, Position: 0})
	var aGot, bGot []int
	a.OnReceive(func(hdr Header, payload []byte) {
		var id int
		fmt.Sscanf(string(payload), "ba-%d", &id)
		aGot = append(aGot, id)
	})
	b.OnReceive(func(hdr Header, payload []byte) {
		var id int
		fmt.Sscanf(string(payload), "ab-%d", &id)
		bGot = append(bGot, id)
	})
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.SendIP(MustAddr("10.0.0.1"), MustAddr("10.0.0.2"), 9,
			[]byte(fmt.Sprintf("ab-%d-%s", i, make([]byte, i%700)))); err != nil {
			t.Fatal(err)
		}
		if err := b.SendIP(MustAddr("10.0.0.2"), MustAddr("10.0.0.1"), 9,
			[]byte(fmt.Sprintf("ba-%d-%s", i, make([]byte, (i*3)%700)))); err != nil {
			t.Fatal(err)
		}
		Poll(a, b)
	}
	if len(aGot) != n || len(bGot) != n {
		t.Fatalf("delivered %d/%d", len(aGot), len(bGot))
	}
	for i := range aGot {
		if aGot[i] != i || bGot[i] != i {
			t.Fatalf("order broken at %d: a=%d b=%d", i, aGot[i], bGot[i])
		}
	}
}
