package stripenet

import (
	"fmt"
	"testing"

	"stripe/internal/channel"
	"stripe/internal/core"
)

// buildRoutedTopology wires the deployment the paper's introduction
// motivates: two sites joined by a striped trunk between routers.
//
//	A ---lanA--- R1 ===(2 striped T1-like links)=== R2 ---lanB--- B
func buildRoutedTopology(t *testing.T, trunkImp channel.Impairments) (a, r1, r2, b *Host) {
	t.Helper()
	a, b = NewHost("A"), NewHost("B")
	r1, r2 = NewHost("R1"), NewHost("R2")
	r1.EnableForwarding()
	r2.EnableForwarding()

	// Site LANs.
	lanA := NewLAN("lanA", channel.Impairments{})
	lanB := NewLAN("lanB", channel.Impairments{})
	an, _ := a.AddNIC("eth0", MustAddr("10.1.0.10"), 1500)
	r1a, _ := r1.AddNIC("eth0", MustAddr("10.1.0.1"), 1500)
	bn, _ := b.AddNIC("eth0", MustAddr("10.2.0.10"), 1500)
	r2b, _ := r2.AddNIC("eth0", MustAddr("10.2.0.1"), 1500)
	for _, att := range []struct {
		l *LAN
		n *NIC
	}{{lanA, an}, {lanA, r1a}, {lanB, bn}, {lanB, r2b}} {
		if err := att.l.Attach(att.n); err != nil {
			t.Fatal(err)
		}
	}

	// The striped trunk: two point-to-point links between the routers.
	for i := 0; i < 2; i++ {
		t1, err := r1.AddNIC(fmt.Sprintf("t%d", i), MustAddr(fmt.Sprintf("192.168.%d.1", i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := r2.AddNIC(fmt.Sprintf("t%d", i), MustAddr(fmt.Sprintf("192.168.%d.2", i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		imp := trunkImp
		imp.Seed = trunkImp.Seed + int64(i*10)
		Connect(t1, t2, imp)
	}
	cfg := StripeConfig{
		Members: []string{"t0", "t1"},
		Quanta:  []int64{1500, 1500},
		Markers: core.MarkerPolicy{Every: 2, Position: 0},
	}
	if _, err := r1.AddStripeIface("trunk", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.AddStripeIface("trunk", cfg); err != nil {
		t.Fatal(err)
	}

	// Routing: hosts default to their router; routers reach the remote
	// site via the striped trunk.
	if err := a.AddRouteVia(MustAddr("10.2.0.0"), 16, "eth0", MustAddr("10.1.0.1")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRouteVia(MustAddr("10.1.0.0"), 16, "eth0", MustAddr("10.2.0.1")); err != nil {
		t.Fatal(err)
	}
	if err := r1.AddRoute(MustAddr("10.2.0.0"), 16, "trunk"); err != nil {
		t.Fatal(err)
	}
	if err := r2.AddRoute(MustAddr("10.1.0.0"), 16, "trunk"); err != nil {
		t.Fatal(err)
	}
	if err := r1.AddRoute(MustAddr("10.1.0.0"), 16, "eth0"); err != nil {
		t.Fatal(err)
	}
	if err := r2.AddRoute(MustAddr("10.2.0.0"), 16, "eth0"); err != nil {
		t.Fatal(err)
	}
	return a, r1, r2, b
}

// TestRoutedStripedTrunk sends end-host traffic through two forwarding
// routers whose interconnect is a striped pair of links: delivery is
// transparent, in order, TTL-decremented, and load-shared on the trunk.
func TestRoutedStripedTrunk(t *testing.T) {
	a, r1, r2, b := buildRoutedTopology(t, channel.Impairments{})
	var got []int
	var ttl uint8
	b.OnReceive(func(hdr Header, payload []byte) {
		var id int
		fmt.Sscanf(string(payload), "m-%d", &id)
		got = append(got, id)
		ttl = hdr.TTL
	})
	const n = 400
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("m-%d-%s", i, string(make([]byte, i%1200))))
		if err := a.SendIP(MustAddr("10.1.0.10"), MustAddr("10.2.0.10"), 6, payload); err != nil {
			t.Fatal(err)
		}
		Poll(a, r1, r2, b)
	}
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("delivery %d = packet %d", i, id)
		}
	}
	if ttl != 62 {
		t.Fatalf("TTL = %d after two router hops, want 62", ttl)
	}
	// Both trunk links carried comparable load.
	b0 := r1.nics["t0"].BytesSent()
	b1 := r1.nics["t1"].BytesSent()
	ratio := float64(b0) / float64(b1)
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("trunk imbalance: %d vs %d bytes", b0, b1)
	}
}

// TestRoutedTrunkRecoversFromLoss adds loss on the trunk links and
// checks transit traffic keeps flowing with marker resynchronization.
func TestRoutedTrunkRecoversFromLoss(t *testing.T) {
	a, r1, r2, b := buildRoutedTopology(t, channel.Impairments{Loss: 0.15, Seed: 5})
	delivered := 0
	b.OnReceive(func(Header, []byte) { delivered++ })
	const n = 1500
	for i := 0; i < n; i++ {
		if err := a.SendIP(MustAddr("10.1.0.10"), MustAddr("10.2.0.10"), 6, []byte(fmt.Sprintf("m-%d", i))); err != nil {
			t.Fatal(err)
		}
		Poll(a, r1, r2, b)
	}
	frac := float64(delivered) / n
	if frac < 0.75 || frac > 0.95 {
		t.Fatalf("delivered fraction %.3f under 15%% trunk loss", frac)
	}
	st := r2.stripes["trunk"].Stats()
	if st.Resyncs == 0 {
		t.Fatal("trunk receiver never resynchronized")
	}
}
