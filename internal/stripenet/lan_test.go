package stripenet

import (
	"fmt"
	"testing"

	"stripe/internal/channel"
	"stripe/internal/core"
)

// buildLANPair wires two hosts across two Ethernet segments, with a
// third bystander host attached to each segment, and a strIPe interface
// on hosts A and B using ARP-resolved unicast.
func buildLANPair(t *testing.T) (a, b, bystander *Host, lans []*LAN) {
	t.Helper()
	a, b = NewHost("A"), NewHost("B")
	bystander = NewHost("C")
	for i := 0; i < 2; i++ {
		lan := NewLAN(fmt.Sprintf("lan%d", i), channel.Impairments{})
		lans = append(lans, lan)
		an, err := a.AddNIC(fmt.Sprintf("eth%d", i), MustAddr(fmt.Sprintf("10.%d.0.1", i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := b.AddNIC(fmt.Sprintf("eth%d", i), MustAddr(fmt.Sprintf("10.%d.0.2", i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		cn, err := bystander.AddNIC(fmt.Sprintf("eth%d", i), MustAddr(fmt.Sprintf("10.%d.0.3", i)), 1500)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []*NIC{an, bn, cn} {
			if err := lan.Attach(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	mk := func(h *Host, peerHostOctet int) {
		t.Helper()
		cfg := StripeConfig{
			Members: []string{"eth0", "eth1"},
			Quanta:  []int64{1500, 1500},
			Markers: core.MarkerPolicy{Every: 4, Position: 0},
			Peers: []Addr{
				MustAddr(fmt.Sprintf("10.0.0.%d", peerHostOctet)),
				MustAddr(fmt.Sprintf("10.1.0.%d", peerHostOctet)),
			},
		}
		if _, err := h.AddStripeIface("stripe0", cfg); err != nil {
			t.Fatal(err)
		}
	}
	mk(a, 2)
	mk(b, 1)
	for i := 0; i < 2; i++ {
		if err := a.AddRoute(MustAddr(fmt.Sprintf("10.%d.0.2", i)), 32, "stripe0"); err != nil {
			t.Fatal(err)
		}
		if err := b.AddRoute(MustAddr(fmt.Sprintf("10.%d.0.1", i)), 32, "stripe0"); err != nil {
			t.Fatal(err)
		}
	}
	return a, b, bystander, lans
}

// TestLANStripingWithARP checks transparent striping across two
// Ethernet segments: the convergence layer resolves the peer's link
// addresses via ARP, queued traffic flushes after the reply, and the
// stream arrives FIFO.
func TestLANStripingWithARP(t *testing.T) {
	a, b, bystander, _ := buildLANPair(t)
	var got []int
	b.OnReceive(func(hdr Header, payload []byte) {
		var id int
		fmt.Sscanf(string(payload), "p-%d", &id)
		got = append(got, id)
	})
	bystanderFrames := 0
	bystander.OnReceive(func(Header, []byte) { bystanderFrames++ })

	const n = 300
	for i := 0; i < n; i++ {
		if err := a.SendIP(MustAddr("10.0.0.1"), MustAddr("10.0.0.2"), 9, []byte(fmt.Sprintf("p-%d", i))); err != nil {
			t.Fatal(err)
		}
		Poll(a, b, bystander)
	}
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("delivery %d = packet %d (order broken)", i, id)
		}
	}
	// ARP resolved both members on both hosts.
	if a.ARPCacheLen("eth0") == 0 || a.ARPCacheLen("eth1") == 0 {
		t.Fatal("sender never resolved its peers")
	}
	// Unicast striped traffic must not reach the bystander's IP layer.
	if bystanderFrames != 0 {
		t.Fatalf("bystander received %d IP packets", bystanderFrames)
	}
}

// TestARPRequestReply checks the resolution exchange in isolation.
func TestARPRequestReply(t *testing.T) {
	lan := NewLAN("lan0", channel.Impairments{})
	a := NewHost("A")
	b := NewHost("B")
	an, _ := a.AddNIC("eth0", MustAddr("192.168.1.1"), 1500)
	bn, _ := b.AddNIC("eth0", MustAddr("192.168.1.2"), 1500)
	if err := lan.Attach(an); err != nil {
		t.Fatal(err)
	}
	if err := lan.Attach(bn); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRoute(MustAddr("192.168.1.0"), 24, "eth0"); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	b.OnReceive(func(hdr Header, payload []byte) {
		if string(payload) != "hello" {
			t.Errorf("payload %q", payload)
		}
		delivered++
	})
	// First send triggers ARP; the packet waits and flushes on reply.
	if err := a.SendIP(MustAddr("192.168.1.1"), MustAddr("192.168.1.2"), 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	Poll(a, b)
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (pending frame not flushed?)", delivered)
	}
	if a.ARPCacheLen("eth0") != 1 {
		t.Fatalf("A's cache has %d entries", a.ARPCacheLen("eth0"))
	}
	// B learned A opportunistically from the request.
	if b.ARPCacheLen("eth0") != 1 {
		t.Fatalf("B's cache has %d entries", b.ARPCacheLen("eth0"))
	}
	// Second send uses the cache (no new ARP traffic): count frames on
	// the wire by bytes before/after.
	before := an.BytesSent()
	if err := a.SendIP(MustAddr("192.168.1.1"), MustAddr("192.168.1.2"), 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	Poll(a, b)
	sent := an.BytesSent() - before
	wantFrame := int64(frameHeaderLen + HeaderLen + len("hello"))
	if sent != wantFrame {
		t.Fatalf("second send cost %d wire bytes, want %d (cache miss?)", sent, wantFrame)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d", delivered)
	}
}

// TestLANUnicastFiltering checks that ports drop frames addressed to
// other stations.
func TestLANUnicastFiltering(t *testing.T) {
	lan := NewLAN("lan0", channel.Impairments{})
	hosts := make([]*Host, 3)
	nics := make([]*NIC, 3)
	for i := range hosts {
		hosts[i] = NewHost(fmt.Sprintf("h%d", i))
		n, _ := hosts[i].AddNIC("eth0", MustAddr(fmt.Sprintf("10.9.0.%d", i+1)), 1500)
		if err := lan.Attach(n); err != nil {
			t.Fatal(err)
		}
		nics[i] = n
		hosts[i].AddRoute(MustAddr("10.9.0.0"), 24, "eth0")
	}
	counts := make([]int, 3)
	for i := range hosts {
		i := i
		hosts[i].OnReceive(func(Header, []byte) { counts[i]++ })
	}
	if err := hosts[0].SendIP(MustAddr("10.9.0.1"), MustAddr("10.9.0.2"), 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	Poll(hosts...)
	if counts[1] != 1 {
		t.Fatalf("target received %d", counts[1])
	}
	if counts[2] != 0 {
		t.Fatalf("bystander received %d", counts[2])
	}
}

// TestLANDoubleAttachRejected covers attachment validation.
func TestLANDoubleAttachRejected(t *testing.T) {
	lan := NewLAN("lan0", channel.Impairments{})
	a := NewHost("A")
	an, _ := a.AddNIC("eth0", MustAddr("10.0.0.1"), 1500)
	if err := lan.Attach(an); err != nil {
		t.Fatal(err)
	}
	if err := lan.Attach(an); err == nil {
		t.Fatal("double attach accepted")
	}
	b := NewHost("B")
	bn, _ := b.AddNIC("eth0", MustAddr("10.0.0.2"), 1500)
	cn, _ := b.AddNIC("eth1", MustAddr("10.0.1.2"), 1500)
	Connect(bn, cn, channel.Impairments{}) // self-loop for the test
	if err := lan.Attach(bn); err == nil {
		t.Fatal("attach of connected NIC accepted")
	}
}

// TestStripeConfigPeersValidation covers the Peers length check.
func TestStripeConfigPeersValidation(t *testing.T) {
	a := NewHost("A")
	a.AddNIC("e0", MustAddr("1.1.1.1"), 1500)
	a.AddNIC("e1", MustAddr("1.1.2.1"), 1500)
	if _, err := a.AddStripeIface("s0", StripeConfig{
		Members: []string{"e0", "e1"},
		Quanta:  []int64{1500, 1500},
		Peers:   []Addr{MustAddr("1.1.1.2")},
	}); err == nil {
		t.Fatal("peer/member mismatch accepted")
	}
}
