// Package netchan carries striped channels over real sockets, the way
// the paper's Section 6.3 experiments striped packets across multiple
// application sockets. A TCP connection is a FIFO channel with flow
// control; a UDP socket pair is a channel with neither reliability nor
// flow control (the configuration the credit-based scheme was added
// for).
//
// The framing plays the role of the data link header: a one-byte
// codepoint distinguishes control packets (markers, credits, resets,
// membership, telemetry) from data
// (the paper's requirement that the lower layer provide demultiplexing
// for markers), a flag byte and optional sequence number support the
// "with header" protocol variants, and the data payload is carried
// verbatim.
package netchan

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"stripe/internal/packet"
)

// MaxFrame is the largest accepted frame payload; larger frames are
// rejected as corrupt rather than allocated.
const MaxFrame = 1 << 24

// Frame header layout:
//
//	0    1  codepoint (packet.Kind)
//	1    1  flags (bit 0: sequence number present)
//	2    8  sequence number (present only when flagged)
//	...     payload
const (
	flagSeq  = 0x01
	hdrBase  = 2
	hdrSeq   = 8
	recordLn = 4 // TCP length prefix
)

// ErrFrameTooShort is returned when a frame cannot hold its own header.
var ErrFrameTooShort = errors.New("netchan: frame too short")

// ErrFrameTooBig is returned when a record length exceeds MaxFrame.
var ErrFrameTooBig = errors.New("netchan: frame exceeds MaxFrame")

// ErrBadCodepoint is returned for an unknown packet kind.
var ErrBadCodepoint = errors.New("netchan: unknown frame codepoint")

// ErrBadFlags is returned when reserved flag bits are set.
var ErrBadFlags = errors.New("netchan: reserved flag bits set")

// EncodeFrame serialises p into the channel framing, appending to dst.
func EncodeFrame(dst []byte, p *packet.Packet) []byte {
	var flags byte
	if p.HasSeq {
		flags |= flagSeq
	}
	dst = append(dst, byte(p.Kind), flags)
	if p.HasSeq {
		var seq [8]byte
		binary.BigEndian.PutUint64(seq[:], p.Seq)
		dst = append(dst, seq[:]...)
	}
	return append(dst, p.Payload...)
}

// DecodeFrame parses a frame back into a packet. The payload is copied
// out of b — never aliased — so the caller may reuse (or overwrite) the
// buffer immediately; that copy is what lets the channels below read
// every record into one channel-owned buffer. The returned packet is
// drawn from the packet pool: once the receiver is done with it (and
// retains no slice of its payload) it may hand it back with
// Packet.Release, making the steady-state receive path allocation-free.
func DecodeFrame(b []byte) (*packet.Packet, error) {
	if len(b) < hdrBase {
		return nil, ErrFrameTooShort
	}
	if b[0] > byte(packet.Telemetry) {
		return nil, ErrBadCodepoint
	}
	flags := b[1]
	if flags&^flagSeq != 0 {
		return nil, ErrBadFlags
	}
	p := packet.Get()
	p.Kind = packet.Kind(b[0])
	b = b[hdrBase:]
	if flags&flagSeq != 0 {
		if len(b) < hdrSeq {
			p.Release()
			return nil, ErrFrameTooShort
		}
		p.Seq = binary.BigEndian.Uint64(b[:hdrSeq])
		p.HasSeq = true
		b = b[hdrSeq:]
	}
	p.Payload = append(p.Payload[:0], b...)
	return p, nil
}

// UDPChannel is one striped channel over a pair of connected UDP
// sockets. The send side implements channel.Sender; the receive side
// blocks in ReadPacket. Loopback UDP is FIFO in practice; occasional
// deviations fall under the paper's burst-error model and are exactly
// what the marker protocol recovers from.
type UDPChannel struct {
	conn *net.UDPConn
	buf  []byte
}

// UDPPair creates a connected loopback socket pair and returns the two
// channel ends.
func UDPPair() (send *UDPChannel, recv *UDPChannel, err error) {
	b, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, nil, err
	}
	// A connected sender socket needs no per-write address and lets the
	// kernel filter stray datagrams.
	ac, err := net.DialUDP("udp", nil, b.LocalAddr().(*net.UDPAddr))
	if err != nil {
		b.Close()
		return nil, nil, err
	}
	return &UDPChannel{conn: ac, buf: make([]byte, 64*1024)},
		&UDPChannel{conn: b, buf: make([]byte, 64*1024)}, nil
}

// Send implements channel.Sender: one frame per datagram.
func (u *UDPChannel) Send(p *packet.Packet) error {
	frame := EncodeFrame(u.buf[:0], p)
	_, err := u.conn.Write(frame)
	return err
}

// SendBatch implements channel.BatchSender. Datagram boundaries are
// packet boundaries, so each packet still goes out as its own write —
// there is nothing to coalesce without sendmmsg — but the whole batch
// reuses the channel's one encode buffer, so batched UDP sends allocate
// nothing.
func (u *UDPChannel) SendBatch(pkts []*packet.Packet) (int, error) {
	for i, p := range pkts {
		if err := u.Send(p); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// ReadPacket blocks for up to timeout (zero means forever) and returns
// the next packet. A timeout returns (nil, nil) so pollers can
// distinguish idleness from failure.
func (u *UDPChannel) ReadPacket(timeout time.Duration) (*packet.Packet, error) {
	if timeout > 0 {
		if err := u.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := u.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	n, _, err := u.conn.ReadFromUDP(u.buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, nil
		}
		return nil, err
	}
	return DecodeFrame(u.buf[:n])
}

// Close releases the socket.
func (u *UDPChannel) Close() error { return u.conn.Close() }

// LocalAddr exposes the bound address (tests and demos print it).
func (u *UDPChannel) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// TCPChannel is one striped channel over a TCP connection with
// length-prefixed records. TCP supplies FIFO order, reliability and
// flow control; it models the paper's "channel as a transport
// connection" case (striping across multiple intelligent adaptors).
type TCPChannel struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	wbuf []byte

	// In-flight read state, persisted across ReadPacket calls so a read
	// deadline can fire at any byte position without desyncing the
	// record stream: however much of the current record has been
	// consumed stays here, and the next call resumes where this one
	// stopped.
	rlen     [recordLn]byte // partially read length prefix
	rlenN    int            // bytes of rlen consumed so far
	rbody    []byte         // channel-owned record buffer, reused every read
	rbodyN   int            // bytes of the current record consumed so far
	rbodyLen int            // current record length; -1 while reading the prefix
}

// NewTCPChannel wraps an established connection.
func NewTCPChannel(conn net.Conn) *TCPChannel {
	return &TCPChannel{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 64*1024),
		br:       bufio.NewReaderSize(conn, 64*1024),
		rbodyLen: -1,
	}
}

// TCPPair returns both ends of a loopback TCP connection.
func TCPPair() (*TCPChannel, *TCPChannel, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	//stripe:allowleak bounded: Accept returns once the deferred ln.Close runs on every exit path, and the buffered send then completes
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	acc := <-ch
	if acc.err != nil {
		dial.Close()
		return nil, nil, acc.err
	}
	return NewTCPChannel(dial), NewTCPChannel(acc.c), nil
}

// writeFrame encodes p and buffers its length-prefixed record without
// flushing.
func (t *TCPChannel) writeFrame(p *packet.Packet) error {
	t.wbuf = EncodeFrame(t.wbuf[:0], p)
	if len(t.wbuf) > MaxFrame {
		return ErrFrameTooBig
	}
	var ln [recordLn]byte
	binary.BigEndian.PutUint32(ln[:], uint32(len(t.wbuf)))
	if _, err := t.bw.Write(ln[:]); err != nil {
		return err
	}
	_, err := t.bw.Write(t.wbuf)
	return err
}

// Send implements channel.Sender: the frame is written as one record
// and flushed, preserving packet boundaries over the byte stream.
func (t *TCPChannel) Send(p *packet.Packet) error {
	if err := t.writeFrame(p); err != nil {
		return err
	}
	return t.bw.Flush()
}

// SendBatch implements channel.BatchSender: every record is buffered
// and the writer flushed once, so a batch costs one write syscall
// instead of one per packet — the writev of the record stream. A flush
// failure leaves delivery of the buffered records uncertain; they are
// counted as accepted (indistinguishable from wire loss, which the
// striping protocol already recovers from) and the error is returned.
func (t *TCPChannel) SendBatch(pkts []*packet.Packet) (int, error) {
	for i, p := range pkts {
		if err := t.writeFrame(p); err != nil {
			// Push any complete records already buffered so a failure on
			// pkts[i] cannot desync the stream for its predecessors.
			if ferr := t.bw.Flush(); ferr != nil {
				return i, ferr
			}
			return i, err
		}
	}
	if err := t.bw.Flush(); err != nil {
		return len(pkts), err
	}
	return len(pkts), nil
}

// ReadPacket blocks for up to timeout (zero means forever) and returns
// the next packet; a timeout returns (nil, nil).
//
// A deadline may fire at any byte position — half-way through the
// 4-byte length prefix, or mid-record — without corrupting the stream:
// the partial state is persisted on the channel and the next call
// resumes the same record where this one stopped. (The previous
// implementation discarded a partial prefix on timeout and reported a
// mid-record timeout as a permanent truncation; either desynced every
// subsequent frame on the connection.) A non-timeout error mid-record
// (connection torn down) is reported as a truncated record.
func (t *TCPChannel) ReadPacket(timeout time.Duration) (*packet.Packet, error) {
	if timeout > 0 {
		if err := t.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := t.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	if t.rbodyLen < 0 {
		for t.rlenN < recordLn {
			m, err := t.br.Read(t.rlen[t.rlenN:])
			t.rlenN += m
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					return nil, nil // prefix bytes so far stay in rlen
				}
				return nil, err
			}
		}
		n := binary.BigEndian.Uint32(t.rlen[:])
		t.rlenN = 0
		if n > MaxFrame {
			return nil, ErrFrameTooBig
		}
		t.rbodyLen = int(n)
		t.rbodyN = 0
		if cap(t.rbody) < t.rbodyLen {
			t.rbody = make([]byte, t.rbodyLen)
		}
	}
	body := t.rbody[:t.rbodyLen]
	for t.rbodyN < t.rbodyLen {
		m, err := t.br.Read(body[t.rbodyN:])
		t.rbodyN += m
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return nil, nil // record bytes so far stay in rbody
			}
			return nil, fmt.Errorf("netchan: truncated record: %w", err)
		}
	}
	// The record is complete; DecodeFrame copies the payload out of
	// body, so rbody is free for the next record immediately.
	t.rbodyLen = -1
	return DecodeFrame(body)
}

// Close releases the connection.
func (t *TCPChannel) Close() error { return t.conn.Close() }
