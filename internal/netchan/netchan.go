// Package netchan carries striped channels over real sockets, the way
// the paper's Section 6.3 experiments striped packets across multiple
// application sockets. A TCP connection is a FIFO channel with flow
// control; a UDP socket pair is a channel with neither reliability nor
// flow control (the configuration the credit-based scheme was added
// for).
//
// The framing plays the role of the data link header: a one-byte
// codepoint distinguishes marker/credit/reset/member control packets from data
// (the paper's requirement that the lower layer provide demultiplexing
// for markers), a flag byte and optional sequence number support the
// "with header" protocol variants, and the data payload is carried
// verbatim.
package netchan

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"stripe/internal/packet"
)

// MaxFrame is the largest accepted frame payload; larger frames are
// rejected as corrupt rather than allocated.
const MaxFrame = 1 << 24

// Frame header layout:
//
//	0    1  codepoint (packet.Kind)
//	1    1  flags (bit 0: sequence number present)
//	2    8  sequence number (present only when flagged)
//	...     payload
const (
	flagSeq  = 0x01
	hdrBase  = 2
	hdrSeq   = 8
	recordLn = 4 // TCP length prefix
)

// ErrFrameTooShort is returned when a frame cannot hold its own header.
var ErrFrameTooShort = errors.New("netchan: frame too short")

// ErrFrameTooBig is returned when a record length exceeds MaxFrame.
var ErrFrameTooBig = errors.New("netchan: frame exceeds MaxFrame")

// ErrBadCodepoint is returned for an unknown packet kind.
var ErrBadCodepoint = errors.New("netchan: unknown frame codepoint")

// ErrBadFlags is returned when reserved flag bits are set.
var ErrBadFlags = errors.New("netchan: reserved flag bits set")

// EncodeFrame serialises p into the channel framing, appending to dst.
func EncodeFrame(dst []byte, p *packet.Packet) []byte {
	var flags byte
	if p.HasSeq {
		flags |= flagSeq
	}
	dst = append(dst, byte(p.Kind), flags)
	if p.HasSeq {
		var seq [8]byte
		binary.BigEndian.PutUint64(seq[:], p.Seq)
		dst = append(dst, seq[:]...)
	}
	return append(dst, p.Payload...)
}

// DecodeFrame parses a frame back into a packet. The payload slice is
// copied so the caller may reuse the buffer.
func DecodeFrame(b []byte) (*packet.Packet, error) {
	if len(b) < hdrBase {
		return nil, ErrFrameTooShort
	}
	if b[0] > byte(packet.Member) {
		return nil, ErrBadCodepoint
	}
	p := &packet.Packet{Kind: packet.Kind(b[0])}
	flags := b[1]
	if flags&^flagSeq != 0 {
		return nil, ErrBadFlags
	}
	b = b[hdrBase:]
	if flags&flagSeq != 0 {
		if len(b) < hdrSeq {
			return nil, ErrFrameTooShort
		}
		p.Seq = binary.BigEndian.Uint64(b[:hdrSeq])
		p.HasSeq = true
		b = b[hdrSeq:]
	}
	p.Payload = append([]byte(nil), b...)
	return p, nil
}

// UDPChannel is one striped channel over a pair of connected UDP
// sockets. The send side implements channel.Sender; the receive side
// blocks in ReadPacket. Loopback UDP is FIFO in practice; occasional
// deviations fall under the paper's burst-error model and are exactly
// what the marker protocol recovers from.
type UDPChannel struct {
	conn *net.UDPConn
	buf  []byte
}

// UDPPair creates a connected loopback socket pair and returns the two
// channel ends.
func UDPPair() (send *UDPChannel, recv *UDPChannel, err error) {
	b, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, nil, err
	}
	// A connected sender socket needs no per-write address and lets the
	// kernel filter stray datagrams.
	ac, err := net.DialUDP("udp", nil, b.LocalAddr().(*net.UDPAddr))
	if err != nil {
		b.Close()
		return nil, nil, err
	}
	return &UDPChannel{conn: ac, buf: make([]byte, 64*1024)},
		&UDPChannel{conn: b, buf: make([]byte, 64*1024)}, nil
}

// Send implements channel.Sender: one frame per datagram.
func (u *UDPChannel) Send(p *packet.Packet) error {
	frame := EncodeFrame(u.buf[:0], p)
	_, err := u.conn.Write(frame)
	return err
}

// ReadPacket blocks for up to timeout (zero means forever) and returns
// the next packet. A timeout returns (nil, nil) so pollers can
// distinguish idleness from failure.
func (u *UDPChannel) ReadPacket(timeout time.Duration) (*packet.Packet, error) {
	if timeout > 0 {
		if err := u.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := u.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	n, _, err := u.conn.ReadFromUDP(u.buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, nil
		}
		return nil, err
	}
	return DecodeFrame(u.buf[:n])
}

// Close releases the socket.
func (u *UDPChannel) Close() error { return u.conn.Close() }

// LocalAddr exposes the bound address (tests and demos print it).
func (u *UDPChannel) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// TCPChannel is one striped channel over a TCP connection with
// length-prefixed records. TCP supplies FIFO order, reliability and
// flow control; it models the paper's "channel as a transport
// connection" case (striping across multiple intelligent adaptors).
type TCPChannel struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	wbuf []byte
}

// NewTCPChannel wraps an established connection.
func NewTCPChannel(conn net.Conn) *TCPChannel {
	return &TCPChannel{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64*1024),
		br:   bufio.NewReaderSize(conn, 64*1024),
	}
}

// TCPPair returns both ends of a loopback TCP connection.
func TCPPair() (*TCPChannel, *TCPChannel, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	acc := <-ch
	if acc.err != nil {
		dial.Close()
		return nil, nil, acc.err
	}
	return NewTCPChannel(dial), NewTCPChannel(acc.c), nil
}

// Send implements channel.Sender: the frame is written as one record
// and flushed, preserving packet boundaries over the byte stream.
func (t *TCPChannel) Send(p *packet.Packet) error {
	t.wbuf = EncodeFrame(t.wbuf[:0], p)
	if len(t.wbuf) > MaxFrame {
		return ErrFrameTooBig
	}
	var ln [recordLn]byte
	binary.BigEndian.PutUint32(ln[:], uint32(len(t.wbuf)))
	if _, err := t.bw.Write(ln[:]); err != nil {
		return err
	}
	if _, err := t.bw.Write(t.wbuf); err != nil {
		return err
	}
	return t.bw.Flush()
}

// ReadPacket blocks for up to timeout (zero means forever) and returns
// the next packet; a timeout returns (nil, nil).
func (t *TCPChannel) ReadPacket(timeout time.Duration) (*packet.Packet, error) {
	if timeout > 0 {
		if err := t.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := t.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	var ln [recordLn]byte
	if _, err := readFull(t.br, ln[:]); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, nil
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(ln[:])
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := readFull(t.br, body); err != nil {
		return nil, fmt.Errorf("netchan: truncated record: %w", err)
	}
	return DecodeFrame(body)
}

// Close releases the connection.
func (t *TCPChannel) Close() error { return t.conn.Close() }

func readFull(r *bufio.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
