package netchan

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"stripe/internal/packet"
)

func TestFrameRoundTrip(t *testing.T) {
	check := func(kind uint8, seq uint64, hasSeq bool, payload []byte) bool {
		p := &packet.Packet{Kind: packet.Kind(kind % 4), Payload: payload}
		if hasSeq {
			p.Seq, p.HasSeq = seq, true
		}
		got, err := DecodeFrame(EncodeFrame(nil, p))
		if err != nil {
			return false
		}
		return got.Kind == p.Kind &&
			got.HasSeq == p.HasSeq &&
			(!p.HasSeq || got.Seq == p.Seq) &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameInstrumentationNotTransmitted(t *testing.T) {
	p := packet.NewDataSized(10)
	p.ID = 42
	p.Ingress = 7
	got, err := DecodeFrame(EncodeFrame(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0 || got.Ingress != 0 {
		t.Fatalf("instrumentation metadata leaked onto the wire: %+v", got)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame(nil); err != ErrFrameTooShort {
		t.Errorf("nil frame: %v", err)
	}
	if _, err := DecodeFrame([]byte{0}); err != ErrFrameTooShort {
		t.Errorf("1-byte frame: %v", err)
	}
	// Sequence flag set but no sequence bytes.
	if _, err := DecodeFrame([]byte{0, flagSeq, 1, 2}); err != ErrFrameTooShort {
		t.Errorf("truncated seq: %v", err)
	}
}

func TestUDPChannelRoundTrip(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()

	want := [][]byte{[]byte("alpha"), []byte("beta"), make([]byte, 1400)}
	for _, pl := range want {
		if err := send.Send(packet.NewData(pl)); err != nil {
			t.Fatal(err)
		}
	}
	for i, pl := range want {
		p, err := recv.ReadPacket(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			t.Fatalf("packet %d timed out", i)
		}
		if !bytes.Equal(p.Payload, pl) {
			t.Fatalf("packet %d payload mismatch", i)
		}
	}
}

func TestUDPChannelMarker(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()

	m := packet.MarkerBlock{Channel: 3, Round: 17, Deficit: -42}
	if err := send.Send(packet.NewMarker(m)); err != nil {
		t.Fatal(err)
	}
	p, err := recv.ReadPacket(2 * time.Second)
	if err != nil || p == nil {
		t.Fatalf("recv: %v %v", p, err)
	}
	if p.Kind != packet.Marker {
		t.Fatalf("kind = %v", p.Kind)
	}
	got, err := packet.MarkerOf(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("marker = %+v, want %+v", got, m)
	}
}

func TestUDPReadTimeout(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	p, err := recv.ReadPacket(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("unexpected packet %v", p)
	}
}

func TestTCPChannelFIFOBulk(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()

	const n = 500
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			p := packet.NewDataSized(100 + i%1300)
			p.Seq, p.HasSeq = uint64(i), true
			if err := send.Send(p); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		p, err := recv.ReadPacket(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			t.Fatalf("packet %d timed out", i)
		}
		if !p.HasSeq || p.Seq != uint64(i) {
			t.Fatalf("packet %d has seq %d (FIFO violated?)", i, p.Seq)
		}
		if p.Len() != 100+i%1300 {
			t.Fatalf("packet %d length %d", i, p.Len())
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPReadTimeout(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	p, err := recv.ReadPacket(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("unexpected packet %v", p)
	}
}

func TestTCPOversizeRejected(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	p := packet.NewDataSized(MaxFrame + 1)
	if err := send.Send(p); err != ErrFrameTooBig {
		t.Fatalf("Send = %v, want ErrFrameTooBig", err)
	}
}

func TestDecodeFrameStrictness(t *testing.T) {
	// Unknown codepoints and reserved flag bits are rejected, keeping
	// decode/encode canonical (pinned by the fuzzers).
	if _, err := DecodeFrame([]byte{9, 0, 1, 2}); err != ErrBadCodepoint {
		t.Errorf("bad codepoint: %v", err)
	}
	if _, err := DecodeFrame([]byte{0, 0x30, 1, 2}); err != ErrBadFlags {
		t.Errorf("reserved flags: %v", err)
	}
}

// TestDecodeFrameBound pins the decode bound to the highest declared
// codepoint: a frame carrying the max kind decodes, one past it is
// ErrBadCodepoint. The wiresym pass enforces this statically; this test
// catches the same drift at run time (the bound was once left at the
// previous max when Telemetry landed, killing read pumps on valid
// frames).
func TestDecodeFrameBound(t *testing.T) {
	p, err := DecodeFrame([]byte{byte(packet.Telemetry), 0})
	if err != nil {
		t.Fatalf("frame at the codepoint bound rejected: %v", err)
	}
	if p.Kind != packet.Telemetry {
		t.Fatalf("decoded Kind = %v, want Telemetry", p.Kind)
	}
	p.Release()
	if _, err := DecodeFrame([]byte{byte(packet.Telemetry) + 1, 0}); err != ErrBadCodepoint {
		t.Fatalf("frame one past the bound: err = %v, want ErrBadCodepoint", err)
	}
}

func TestUDPSendAfterCloseFails(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	recv.Close()
	send.Close()
	if err := send.Send(packet.NewDataSized(10)); err == nil {
		t.Fatal("send on closed socket succeeded")
	}
	if _, err := recv.ReadPacket(10 * time.Millisecond); err == nil {
		t.Fatal("read on closed socket succeeded")
	}
}

func TestUDPLocalAddr(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	if send.LocalAddr() == nil || recv.LocalAddr() == nil {
		t.Fatal("nil local address")
	}
}

func TestTCPTruncatedRecord(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	// Write a length prefix promising 100 bytes, deliver 3, then close.
	raw := send.conn
	raw.Write([]byte{0, 0, 0, 100, 1, 2, 3})
	raw.Close()
	if _, err := recv.ReadPacket(2 * time.Second); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestTCPOversizeRecordRejectedOnRead(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	defer send.Close()
	// A length prefix beyond MaxFrame must be rejected before any
	// allocation.
	send.conn.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := recv.ReadPacket(2 * time.Second); err != ErrFrameTooBig {
		t.Fatalf("oversize read: %v", err)
	}
}

// --- Framing-desync regression tests ------------------------------------

// scriptedConn is a net.Conn whose Read follows a script: each step
// either delivers a chunk of bytes or injects a deadline-style timeout
// error. It reproduces, deterministically, a read deadline firing at an
// arbitrary byte position inside a record.
type scriptedConn struct {
	steps []scriptStep
}

type scriptStep struct {
	data    []byte
	timeout bool
}

type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

func (c *scriptedConn) Read(b []byte) (int, error) {
	if len(c.steps) == 0 {
		return 0, io.EOF
	}
	s := c.steps[0]
	if s.timeout {
		c.steps = c.steps[1:]
		return 0, timeoutError{}
	}
	n := copy(b, s.data)
	if n < len(s.data) {
		c.steps[0].data = s.data[n:]
	} else {
		c.steps = c.steps[1:]
	}
	return n, nil
}

func (c *scriptedConn) Write(b []byte) (int, error)      { return len(b), nil }
func (c *scriptedConn) Close() error                     { return nil }
func (c *scriptedConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *scriptedConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *scriptedConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptedConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptedConn) SetWriteDeadline(time.Time) error { return nil }

// record builds one length-prefixed wire record for p.
func record(t *testing.T, p *packet.Packet) []byte {
	t.Helper()
	frame := EncodeFrame(nil, p)
	rec := make([]byte, recordLn+len(frame))
	binary.BigEndian.PutUint32(rec, uint32(len(frame)))
	copy(rec[recordLn:], frame)
	return rec
}

// TestTCPTimeoutMidPrefixKeepsSync reproduces the framing desync where
// a read deadline fired after part of the 4-byte length prefix had been
// consumed: the old ReadPacket returned (nil, nil) and discarded the
// partial prefix, so the next call misparsed mid-record bytes as a
// fresh prefix and every subsequent frame on the connection was lost.
// With partial-read state persisted, the timeout is reported as
// idleness and the record — and every record after it — decodes intact.
func TestTCPTimeoutMidPrefixKeepsSync(t *testing.T) {
	a := &packet.Packet{Kind: packet.Data, Payload: []byte("first-record"), Seq: 7, HasSeq: true}
	b := &packet.Packet{Kind: packet.Data, Payload: []byte("second-record")}
	recA, recB := record(t, a), record(t, b)
	ch := NewTCPChannel(&scriptedConn{steps: []scriptStep{
		{data: recA[:2]}, // half the length prefix...
		{timeout: true},  // ...then the deadline fires
		{data: recA[2:]},
		{data: recB},
	}})

	p, err := ch.ReadPacket(time.Second)
	if err != nil || p != nil {
		t.Fatalf("timeout mid-prefix: got (%v, %v), want (nil, nil)", p, err)
	}
	p, err = ch.ReadPacket(time.Second)
	if err != nil {
		t.Fatalf("resumed read: %v", err)
	}
	if p == nil || string(p.Payload) != "first-record" || !p.HasSeq || p.Seq != 7 {
		t.Fatalf("resumed read returned %+v, want the first record intact", p)
	}
	p, err = ch.ReadPacket(time.Second)
	if err != nil {
		t.Fatalf("follow-up read: %v", err)
	}
	if p == nil || string(p.Payload) != "second-record" {
		t.Fatalf("stream desynced after timeout: follow-up record %+v", p)
	}
}

// TestTCPTimeoutMidBodyKeepsSync reproduces the second desync: a
// deadline firing mid-record was reported as a permanent "truncated
// record" error even though the connection was healthy and the rest of
// the record was still in flight. It must read as idleness, and the
// record must complete on the next call.
func TestTCPTimeoutMidBodyKeepsSync(t *testing.T) {
	a := &packet.Packet{Kind: packet.Data, Payload: []byte("slow-but-whole")}
	b := &packet.Packet{Kind: packet.Marker, Payload: []byte("after")}
	recA, recB := record(t, a), record(t, b)
	ch := NewTCPChannel(&scriptedConn{steps: []scriptStep{
		{data: recA[:recordLn+5]}, // prefix plus a body fragment...
		{timeout: true},           // ...then the deadline fires mid-body
		{timeout: true},           // (twice: the poller polls again)
		{data: recA[recordLn+5:]},
		{data: recB},
	}})

	for i := 0; i < 2; i++ {
		p, err := ch.ReadPacket(time.Second)
		if err != nil || p != nil {
			t.Fatalf("timeout mid-body #%d: got (%v, %v), want (nil, nil)", i, p, err)
		}
	}
	p, err := ch.ReadPacket(time.Second)
	if err != nil {
		t.Fatalf("resumed read: %v", err)
	}
	if p == nil || string(p.Payload) != "slow-but-whole" {
		t.Fatalf("resumed read returned %+v, want the full record", p)
	}
	p, err = ch.ReadPacket(time.Second)
	if err != nil || p == nil || p.Kind != packet.Marker || string(p.Payload) != "after" {
		t.Fatalf("stream desynced after mid-body timeout: got (%+v, %v)", p, err)
	}
}

// TestTCPDribbledStreamKeepsSync drives a whole multi-record stream
// byte by byte with a timeout injected between every byte — the
// worst-case deadline placement — and requires every record to arrive
// intact and in order.
func TestTCPDribbledStreamKeepsSync(t *testing.T) {
	var wire []byte
	want := make([]string, 5)
	for i := range want {
		want[i] = string(rune('a'+i)) + "-payload"
		wire = append(wire, record(t, &packet.Packet{Kind: packet.Data, Payload: []byte(want[i])})...)
	}
	var steps []scriptStep
	for i := range wire {
		steps = append(steps, scriptStep{data: wire[i : i+1]}, scriptStep{timeout: true})
	}
	ch := NewTCPChannel(&scriptedConn{steps: steps})

	var got []string
	for i := 0; i < 2*len(wire) && len(got) < len(want); i++ {
		p, err := ch.ReadPacket(time.Second)
		if err != nil {
			t.Fatalf("after %d records: %v", len(got), err)
		}
		if p != nil {
			got = append(got, string(p.Payload))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q (stream desynced)", i, got[i], want[i])
		}
	}
}

// TestTCPReadBufferReuseDoesNotAlias pins DecodeFrame's copy semantics:
// ReadPacket reuses one channel-owned record buffer, so the packets it
// returns must not alias it — an earlier packet's payload must survive
// later reads.
func TestTCPReadBufferReuseDoesNotAlias(t *testing.T) {
	a := &packet.Packet{Kind: packet.Data, Payload: []byte("aaaaaaaa")}
	b := &packet.Packet{Kind: packet.Data, Payload: []byte("bbbbbbbb")}
	ch := NewTCPChannel(&scriptedConn{steps: []scriptStep{
		{data: record(t, a)}, {data: record(t, b)},
	}})
	pa, err := ch.ReadPacket(time.Second)
	if err != nil || pa == nil {
		t.Fatalf("first read: (%v, %v)", pa, err)
	}
	pb, err := ch.ReadPacket(time.Second)
	if err != nil || pb == nil {
		t.Fatalf("second read: (%v, %v)", pb, err)
	}
	if string(pa.Payload) != "aaaaaaaa" {
		t.Fatalf("first payload corrupted by buffer reuse: %q", pa.Payload)
	}
}

// TestTCPSendBatchRoundTrip drives the batched TCP send path over a
// real socket pair: one SendBatch flush, every record delivered FIFO.
func TestTCPSendBatchRoundTrip(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	pkts := make([]*packet.Packet, 32)
	for i := range pkts {
		pl := make([]byte, 64)
		binary.BigEndian.PutUint64(pl, uint64(i))
		pkts[i] = &packet.Packet{Kind: packet.Data, Payload: pl, Seq: uint64(i), HasSeq: true}
	}
	n, err := send.SendBatch(pkts)
	if err != nil || n != len(pkts) {
		t.Fatalf("SendBatch = (%d, %v), want (%d, nil)", n, err, len(pkts))
	}
	for i := range pkts {
		p, err := recv.ReadPacket(2 * time.Second)
		if err != nil || p == nil {
			t.Fatalf("read %d: (%v, %v)", i, p, err)
		}
		if got := binary.BigEndian.Uint64(p.Payload); got != uint64(i) || p.Seq != uint64(i) {
			t.Fatalf("record %d arrived as payload %d seq %d", i, got, p.Seq)
		}
		p.Release()
	}
}

// TestUDPSendBatchRoundTrip covers the per-datagram batched UDP path.
func TestUDPSendBatchRoundTrip(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	pkts := make([]*packet.Packet, 8)
	for i := range pkts {
		pl := make([]byte, 32)
		binary.BigEndian.PutUint64(pl, uint64(i))
		pkts[i] = &packet.Packet{Kind: packet.Data, Payload: pl}
	}
	n, err := send.SendBatch(pkts)
	if err != nil || n != len(pkts) {
		t.Fatalf("SendBatch = (%d, %v), want (%d, nil)", n, err, len(pkts))
	}
	for i := range pkts {
		p, err := recv.ReadPacket(2 * time.Second)
		if err != nil || p == nil {
			t.Fatalf("read %d: (%v, %v)", i, p, err)
		}
		if got := binary.BigEndian.Uint64(p.Payload); got != uint64(i) {
			t.Fatalf("datagram %d arrived as %d", i, got)
		}
	}
}
