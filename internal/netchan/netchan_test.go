package netchan

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"stripe/internal/packet"
)

func TestFrameRoundTrip(t *testing.T) {
	check := func(kind uint8, seq uint64, hasSeq bool, payload []byte) bool {
		p := &packet.Packet{Kind: packet.Kind(kind % 4), Payload: payload}
		if hasSeq {
			p.Seq, p.HasSeq = seq, true
		}
		got, err := DecodeFrame(EncodeFrame(nil, p))
		if err != nil {
			return false
		}
		return got.Kind == p.Kind &&
			got.HasSeq == p.HasSeq &&
			(!p.HasSeq || got.Seq == p.Seq) &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameInstrumentationNotTransmitted(t *testing.T) {
	p := packet.NewDataSized(10)
	p.ID = 42
	p.Ingress = 7
	got, err := DecodeFrame(EncodeFrame(nil, p))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0 || got.Ingress != 0 {
		t.Fatalf("instrumentation metadata leaked onto the wire: %+v", got)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame(nil); err != ErrFrameTooShort {
		t.Errorf("nil frame: %v", err)
	}
	if _, err := DecodeFrame([]byte{0}); err != ErrFrameTooShort {
		t.Errorf("1-byte frame: %v", err)
	}
	// Sequence flag set but no sequence bytes.
	if _, err := DecodeFrame([]byte{0, flagSeq, 1, 2}); err != ErrFrameTooShort {
		t.Errorf("truncated seq: %v", err)
	}
}

func TestUDPChannelRoundTrip(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()

	want := [][]byte{[]byte("alpha"), []byte("beta"), make([]byte, 1400)}
	for _, pl := range want {
		if err := send.Send(packet.NewData(pl)); err != nil {
			t.Fatal(err)
		}
	}
	for i, pl := range want {
		p, err := recv.ReadPacket(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			t.Fatalf("packet %d timed out", i)
		}
		if !bytes.Equal(p.Payload, pl) {
			t.Fatalf("packet %d payload mismatch", i)
		}
	}
}

func TestUDPChannelMarker(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()

	m := packet.MarkerBlock{Channel: 3, Round: 17, Deficit: -42}
	if err := send.Send(packet.NewMarker(m)); err != nil {
		t.Fatal(err)
	}
	p, err := recv.ReadPacket(2 * time.Second)
	if err != nil || p == nil {
		t.Fatalf("recv: %v %v", p, err)
	}
	if p.Kind != packet.Marker {
		t.Fatalf("kind = %v", p.Kind)
	}
	got, err := packet.MarkerOf(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("marker = %+v, want %+v", got, m)
	}
}

func TestUDPReadTimeout(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	p, err := recv.ReadPacket(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("unexpected packet %v", p)
	}
}

func TestTCPChannelFIFOBulk(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()

	const n = 500
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			p := packet.NewDataSized(100 + i%1300)
			p.Seq, p.HasSeq = uint64(i), true
			if err := send.Send(p); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		p, err := recv.ReadPacket(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			t.Fatalf("packet %d timed out", i)
		}
		if !p.HasSeq || p.Seq != uint64(i) {
			t.Fatalf("packet %d has seq %d (FIFO violated?)", i, p.Seq)
		}
		if p.Len() != 100+i%1300 {
			t.Fatalf("packet %d length %d", i, p.Len())
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPReadTimeout(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	p, err := recv.ReadPacket(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("unexpected packet %v", p)
	}
}

func TestTCPOversizeRejected(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	p := packet.NewDataSized(MaxFrame + 1)
	if err := send.Send(p); err != ErrFrameTooBig {
		t.Fatalf("Send = %v, want ErrFrameTooBig", err)
	}
}

func TestDecodeFrameStrictness(t *testing.T) {
	// Unknown codepoints and reserved flag bits are rejected, keeping
	// decode/encode canonical (pinned by the fuzzers).
	if _, err := DecodeFrame([]byte{9, 0, 1, 2}); err != ErrBadCodepoint {
		t.Errorf("bad codepoint: %v", err)
	}
	if _, err := DecodeFrame([]byte{0, 0x30, 1, 2}); err != ErrBadFlags {
		t.Errorf("reserved flags: %v", err)
	}
}

func TestUDPSendAfterCloseFails(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	recv.Close()
	send.Close()
	if err := send.Send(packet.NewDataSized(10)); err == nil {
		t.Fatal("send on closed socket succeeded")
	}
	if _, err := recv.ReadPacket(10 * time.Millisecond); err == nil {
		t.Fatal("read on closed socket succeeded")
	}
}

func TestUDPLocalAddr(t *testing.T) {
	send, recv, err := UDPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	defer recv.Close()
	if send.LocalAddr() == nil || recv.LocalAddr() == nil {
		t.Fatal("nil local address")
	}
}

func TestTCPTruncatedRecord(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	// Write a length prefix promising 100 bytes, deliver 3, then close.
	raw := send.conn
	raw.Write([]byte{0, 0, 0, 100, 1, 2, 3})
	raw.Close()
	if _, err := recv.ReadPacket(2 * time.Second); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestTCPOversizeRecordRejectedOnRead(t *testing.T) {
	send, recv, err := TCPPair()
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	defer send.Close()
	// A length prefix beyond MaxFrame must be rejected before any
	// allocation.
	send.conn.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := recv.ReadPacket(2 * time.Second); err != ErrFrameTooBig {
		t.Fatalf("oversize read: %v", err)
	}
}
