package netchan

import (
	"bytes"
	"testing"

	"stripe/internal/packet"
)

// FuzzDecodeFrame hardens the channel framing parser against arbitrary
// bytes: it must never panic, and structurally valid frames must
// round-trip.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 42})
	p := packet.NewData([]byte("seed payload"))
	p.Seq, p.HasSeq = 7, true
	f.Add(EncodeFrame(nil, p))
	f.Add(EncodeFrame(nil, packet.NewMarker(packet.MarkerBlock{Channel: 1, Round: 2, Deficit: -3})))
	// Regression seeds at the codepoint bound: the highest declared
	// kind must decode, one past it must be rejected. The stale-bound
	// bug (bound left at Marker when Credit landed) lived exactly here.
	f.Add([]byte{byte(packet.Telemetry), 0})
	f.Add([]byte{byte(packet.Telemetry) + 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to the same bytes.
		re := EncodeFrame(nil, q)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzDecodeMarker hardens the marker parser: no panics, and anything
// that decodes must re-encode identically (the CRC pins this down).
func FuzzDecodeMarker(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, packet.MarkerWireLen))
	m := packet.MarkerBlock{Channel: 3, Round: 99, Deficit: -500, Credits: 1 << 40}
	f.Add(m.Encode(nil))
	// Sent edge values: the reconcile path converts Sent to int64, so
	// seed zero, the signed wrap point (1<<63, negative after the cast),
	// and the maximum, where off-by-one bugs and sign flips live.
	for _, sent := range []uint64{0, 1 << 63, ^uint64(0)} {
		edge := packet.MarkerBlock{Channel: 1, Round: 2, Sent: sent}
		f.Add(edge.Encode(nil))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := packet.DecodeMarker(data)
		if err != nil {
			return
		}
		re := got.Encode(nil)
		if !bytes.Equal(re, data[:packet.MarkerWireLen]) {
			t.Fatalf("marker re-encode mismatch")
		}
	})
}

// FuzzDecodeCredit does the same for credit blocks.
func FuzzDecodeCredit(f *testing.F) {
	f.Add([]byte{})
	c := packet.CreditBlock{Channel: 2, Grant: 1 << 33}
	f.Add(c.Encode(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := packet.DecodeCredit(data)
		if err != nil {
			return
		}
		re := got.Encode(nil)
		if !bytes.Equal(re, data[:packet.CreditWireLen]) {
			t.Fatalf("credit re-encode mismatch")
		}
	})
}
