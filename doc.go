// Package stripe implements the reliable, scalable channel striping
// protocol of Adiseshu, Parulkar and Varghese (SIGCOMM 1996): fair load
// sharing of variable-length packets across multiple FIFO channels via
// Surplus Round Robin (a causal fair-queuing algorithm run "in
// reverse"), FIFO delivery at the receiver via logical reception (the
// receiver simulates the sender's automaton), and fast restoration of
// synchronization after loss via periodic marker packets — all without
// modifying a single data packet.
//
// # Quick start
//
// Implement ChannelSender/ChannelReceiver for your transport (or use
// the built-in local, UDP, or TCP channels), then:
//
//	cfg := stripe.Config{Quanta: stripe.UniformQuanta(4, 1500)}
//	tx, _ := stripe.NewSender(senders, cfg)
//	rx, _ := stripe.NewReceiver(4, cfg)
//
//	go func() { // receive pumps, one per channel
//	    for pkt := range channel0 { rx.Arrive(0, pkt) }
//	}()
//	...
//	tx.Send(stripe.Data(payload)) // stripes across the channels
//	pkt := rx.Recv()              // delivered in FIFO order
//
// The sender and receiver must be configured with identical Quanta (and
// marker policy); the receiver's FIFO guarantee is exactly the paper's:
// perfect FIFO without loss, quasi-FIFO under loss, resynchronizing
// within roughly one marker period after losses stop.
//
// # Batching and the packet pool
//
// SendBatch/RecvBatch move packets in bulk: the session lock is taken
// once per batch, the scheduler is consulted once per service run, and
// TCP channels flush once per batch. The single-packet Send and Recv
// are batches of one, so the two styles mix freely. The pool makes the
// steady state allocation-free; its lifetime rules:
//
//   - GetPacket/GetPacketSized hand you exclusive ownership of a pooled
//     packet and its payload backing array. Fill it, send it; after a
//     successful SendBatch the packets belong to the session/transport.
//   - Packets returned by Recv/RecvBatch are yours. Once the payload is
//     consumed, hand each back with Packet.Release — after Release,
//     neither the packet nor any slice of its payload may be touched,
//     because the next Get anywhere in the process may reuse both.
//   - Release is always optional: an unreleased packet is ordinary
//     garbage, and correctness never depends on the pool.
//   - Never Release a packet whose payload aliases memory you keep
//     (e.g. one built with Data around an application buffer): Release
//     donates the backing array to the pool.
//
// # Flow control and memory bounds
//
// Duplex Sessions piggyback credit-based flow control on markers. Each
// marker carries the sender's cumulative byte position on its channel;
// because channels are FIFO, the receiver computes the exact loss at
// every marker arrival and re-grants consumed+lost+window, so credits
// lost with dropped packets are reclaimed within a marker period and
// the sender never wedges permanently (grants are folded monotonically,
// making lost or reordered markers harmless). Config.MaxBuffered caps
// resequencer memory: markers that no data precedes are drained eagerly
// (an idle-but-markered direction stays at O(channels) occupancy), a
// full buffer escalates to forced delivery past gaps, and at twice the
// cap arrivals are dropped — no worse than channel loss, which the
// protocol already survives.
//
// # Counters
//
// Sender.Stats and Session.SendStats return SenderStats, the
// transmit-side counters: DataPackets and DataBytes (data striped so
// far), Markers (marker packets cut), Round and Epoch (the SRR
// automaton position), and PerChannel ([]ChannelLoad with Packets and
// Bytes per channel — the raw material of the fairness claim).
// Receiver.Stats and Session.Stats return ReceiverStats, the
// receive-side mirror: Delivered and DeliveredBytes (in-order data
// handed to the application), Markers and BadMarkers (consumed vs
// dropped-as-corrupt), Resyncs (markers that actually changed receiver
// state), Skips (channel visits skipped under the r_c > G rule),
// Resets and OldEpochDrops (epoch resets and packets discarded while
// waiting one out), SelfHeals (state adopted wholesale from uniformly
// newer markers), and FastForwards (rounds advanced while every
// channel was skip-listed).
//
// # Observability
//
// For continuous monitoring, attach a Collector:
//
//	col := stripe.NewCollector(4) // or NewNamedCollector("tx", 4)
//	cfg := stripe.Config{Quanta: stripe.UniformQuanta(4, 1500), Collector: col}
//	srv, _ := stripe.Serve("127.0.0.1:9090", col)
//	defer srv.Close()
//	// curl http://127.0.0.1:9090/metrics
//
// The collector keeps per-channel packet/byte/marker/recovery counters,
// a packet-displacement histogram, and a live fairness gauge — the
// observed max_i |K·Quantum_i − bytes_i| next to the Theorem 3.2 bound
// Max + 2·Quantum. Serve exposes everything as Prometheus text on
// /metrics, expvar JSON on /debug/vars, and the standard pprof
// profiles on /debug/pprof/. Read it in-process with Snapshot (on the
// Collector or on the Sender/Receiver/Session it is attached to), or
// subscribe to discrete protocol transitions (resync, skip, reset,
// self-heal, fast-forward, credit exhaustion, credit reconciliation,
// resequencer overflow) with Collector.AddSink —
// NewRingSink keeps the last n events, NewWriterSink logs one line
// each. All of it is nil-safe: with no Collector configured the hot
// path pays a single pointer test.
//
// For rates and per-channel health rather than cumulative totals,
// attach a windowed rollup:
//
//	stripe.NewWindows(col, stripe.WindowConfig{}) // 1s tick, 1s/10s/60s spans
//
// Counter deltas fold into ring-buffered windows on the engine's flush
// tick (no per-packet cost) and publish per-channel goodput, loss and
// resync fractions, send-latency EWMAs, marker-spread delay skew, and
// a composable 0-100 HealthScore with reason codes. Serve adds the
// rolled-up view at /debug/stripe/health and windowed stripe_*_rate /
// stripe_channel_health gauges to /metrics; cmd/stripetop renders it
// live in a terminal. Sessions can consume the score as evidence-based
// eviction (HealthConfig.ScoreEvictBelow) — it catches silently lossy
// channels whose Send never errors and so never build an error streak.
//
// Sessions also feed each other: on every marker-timer tick the
// receiver's per-channel view (delivered/lost bytes, resyncs,
// resequencer occupancy, recent marker timestamps) rides back as a
// Telemetry control packet — a forward-compatible codepoint that
// plain receivers ignore — and folds into the sender-side PeerView
// (Session.PeerView, re-exported from internal/obs). An NTP-style
// min-filter over marker tx/rx timestamp pairs recovers per-channel
// relative one-way delay and bundle skew; peer-reported loss powers
// HealthConfig.PeerScoreEvictBelow, eviction on the receiver's
// evidence when the sender's own accounting shows nothing wrong. The
// peer section appears in /debug/stripe/health, the stripe_peer_*
// and stripe_channel_oneway_delay_nanoseconds gauges, and
// stripetop's P-LOSS / P-DELAY columns.
//
// The internal packages implement every substrate of the paper's
// evaluation (schedulers, impaired channels, the strIPe IP framework, a
// discrete-event simulator with a Reno-style TCP, baselines, and the
// experiment harness); see DESIGN.md for the map and EXPERIMENTS.md for
// the regenerated tables and figures.
package stripe
