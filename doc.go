// Package stripe implements the reliable, scalable channel striping
// protocol of Adiseshu, Parulkar and Varghese (SIGCOMM 1996): fair load
// sharing of variable-length packets across multiple FIFO channels via
// Surplus Round Robin (a causal fair-queuing algorithm run "in
// reverse"), FIFO delivery at the receiver via logical reception (the
// receiver simulates the sender's automaton), and fast restoration of
// synchronization after loss via periodic marker packets — all without
// modifying a single data packet.
//
// # Quick start
//
// Implement ChannelSender/ChannelReceiver for your transport (or use
// the built-in local, UDP, or TCP channels), then:
//
//	cfg := stripe.Config{Quanta: stripe.UniformQuanta(4, 1500)}
//	tx, _ := stripe.NewSender(senders, cfg)
//	rx, _ := stripe.NewReceiver(4, cfg)
//
//	go func() { // receive pumps, one per channel
//	    for pkt := range channel0 { rx.Arrive(0, pkt) }
//	}()
//	...
//	tx.Send(stripe.Data(payload)) // stripes across the channels
//	pkt := rx.Recv()              // delivered in FIFO order
//
// The sender and receiver must be configured with identical Quanta (and
// marker policy); the receiver's FIFO guarantee is exactly the paper's:
// perfect FIFO without loss, quasi-FIFO under loss, resynchronizing
// within roughly one marker period after losses stop.
//
// The internal packages implement every substrate of the paper's
// evaluation (schedulers, impaired channels, the strIPe IP framework, a
// discrete-event simulator with a Reno-style TCP, baselines, and the
// experiment harness); see DESIGN.md for the map and EXPERIMENTS.md for
// the regenerated tables and figures.
package stripe
