package stripe

import (
	"encoding/json"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"stripe/internal/obs"
)

// maxTraceExport caps the lifecycles one /debug/stripe/trace response
// carries, split across the distinct tracers behind the endpoint, so a
// scrape loop cannot amplify the export cost with the retention size.
const maxTraceExport = 2048

// Server is the observability HTTP endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server

	// Reused trace-export scratch: the dedup set and copy buffer live
	// for the server's lifetime instead of being rebuilt per request.
	traceMu   sync.Mutex
	traceSeen map[*Tracer]bool
	traceBuf  []PacketTrace

	// done is closed by the serve goroutine when the accept loop exits,
	// so Close can wait for it instead of abandoning the goroutine.
	done chan struct{}
}

// Serve starts an HTTP endpoint exposing the given collectors:
//
//	/metrics              Prometheus text exposition (all stripe_* metrics,
//	                      including the windowed stripe_*_rate and
//	                      stripe_channel_health gauges)
//	/debug/vars           expvar, with each collector published as JSON
//	/debug/pprof/         the standard net/http/pprof profiles
//	/debug/stripe/trace   chrome://tracing JSON of recent packet
//	                      lifecycles (collectors with a Tracer attached)
//	/debug/stripe/health  JSON health report per collector: fairness,
//	                      windowed per-channel rates, and health scores
//	                      (see obs.HealthReport); the payload stripetop
//	                      polls
//
// addr is a TCP listen address such as ":9090" or "127.0.0.1:0"; use
// Server.Addr to learn the bound address when the port was 0. The
// endpoint reads collectors without locks and never touches the
// protocol hot path. Close the returned Server to stop serving.
func Serve(addr string, cols ...*Collector) (*Server, error) {
	live := make([]*Collector, 0, len(cols))
	for _, c := range cols {
		if c != nil {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return nil, errors.New("stripe: Serve needs at least one non-nil Collector")
	}
	for _, c := range live {
		c.PublishExpvar()
	}

	s := &Server{traceSeen: map[*Tracer]bool{}, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, live...)
	})
	mux.HandleFunc("/debug/stripe/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.writeTrace(w, live)
	})
	mux.HandleFunc("/debug/stripe/health", func(w http.ResponseWriter, _ *http.Request) {
		reports := make([]obs.HealthReport, len(live))
		for i, c := range live {
			reports[i] = c.HealthReport()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct { //nolint:errcheck // client gone
			Sessions []obs.HealthReport
		}{reports})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	}()
	return s, nil
}

// writeTrace renders one timeline across all collectors: every
// tracer's recent lifecycles plus each collector's retained events
// share the process timebase. Distinct tracers are deduplicated (a
// session pair usually shares one), the export is capped at
// maxTraceExport lifecycles split evenly across tracers, and the
// dedup set and copy buffer are reused across requests.
func (s *Server) writeTrace(w http.ResponseWriter, live []*Collector) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	for t := range s.traceSeen {
		delete(s.traceSeen, t)
	}
	tracers := 0
	for _, c := range live {
		if t := c.Tracer(); t != nil && !s.traceSeen[t] {
			s.traceSeen[t] = true
			tracers++
		}
	}
	s.traceBuf = s.traceBuf[:0]
	if tracers > 0 {
		per := maxTraceExport / tracers
		for t := range s.traceSeen {
			s.traceBuf = t.AppendRecent(s.traceBuf, per)
		}
	}
	obs.WriteChromeTrace(w, s.traceBuf, nil) //nolint:errcheck // client gone
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
