package stripe

import (
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"stripe/internal/obs"
)

// Server is the observability HTTP endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP endpoint exposing the given collectors:
//
//	/metrics             Prometheus text exposition (all stripe_* metrics)
//	/debug/vars          expvar, with each collector published as JSON
//	/debug/pprof/        the standard net/http/pprof profiles
//	/debug/stripe/trace  chrome://tracing JSON of recent packet
//	                     lifecycles (collectors with a Tracer attached)
//
// addr is a TCP listen address such as ":9090" or "127.0.0.1:0"; use
// Server.Addr to learn the bound address when the port was 0. The
// endpoint reads collectors without locks and never touches the
// protocol hot path. Close the returned Server to stop serving.
func Serve(addr string, cols ...*Collector) (*Server, error) {
	live := make([]*Collector, 0, len(cols))
	for _, c := range cols {
		if c != nil {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return nil, errors.New("stripe: Serve needs at least one non-nil Collector")
	}
	for _, c := range live {
		c.PublishExpvar()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, live...)
	})
	mux.HandleFunc("/debug/stripe/trace", func(w http.ResponseWriter, _ *http.Request) {
		// One timeline across all collectors: every tracer's recent
		// lifecycles plus each collector's retained events share the
		// process timebase. Distinct tracers are deduplicated (a session
		// pair usually shares one).
		var traces []PacketTrace
		seen := map[*Tracer]bool{}
		for _, c := range live {
			if t := c.Tracer(); t != nil && !seen[t] {
				seen[t] = true
				traces = append(traces, t.Recent()...)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, traces, nil) //nolint:errcheck // client gone
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
