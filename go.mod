module stripe

go 1.22
