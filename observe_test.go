package stripe

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"stripe/internal/channel"
	"stripe/internal/packet"
	"stripe/internal/trace"
)

// TestFairnessGaugeUnderFigure15Workload drives the public Sender with
// the paper's Figure 15 workload (equiprobable 200 B / 1000 B packets)
// and checks the live fairness gauge on many prefixes: the measured
// discrepancy max_i |K·Quantum_i − bytes_i| must never exceed the
// Theorem 3.2 bound Max + 2·Quantum.
func TestFairnessGaugeUnderFigure15Workload(t *testing.T) {
	const nch = 4
	col := NewCollector(nch)
	g := channel.NewGroup(nch, channel.Impairments{})
	tx, err := NewSender(g.Senders(), Config{
		Quanta:    UniformQuanta(nch, 1500),
		Markers:   MarkerPolicy{Every: 4, Position: 0},
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := trace.NewBimodal(200, 1000, 0.5, 15)
	for i := 0; i < 5000; i++ {
		if err := tx.SendBytes(make([]byte, sizes.Next())); err != nil {
			t.Fatal(err)
		}
		for _, q := range g.Queues {
			q.Recv()
		}
		if i%97 == 0 {
			s := tx.Snapshot()
			if s.FairnessBound > 0 && s.FairnessDiscrepancy > s.FairnessBound {
				t.Fatalf("prefix %d: fairness discrepancy %d exceeds bound %d",
					i, s.FairnessDiscrepancy, s.FairnessBound)
			}
		}
	}
	s := tx.Snapshot()
	if s.FairnessBound == 0 {
		t.Fatal("fairness bound never derived")
	}
	if s.FairnessDiscrepancy > s.FairnessBound {
		t.Fatalf("final fairness discrepancy %d exceeds bound %d",
			s.FairnessDiscrepancy, s.FairnessBound)
	}
	st := tx.Stats()
	var colBytes int64
	for _, ch := range s.Channels {
		colBytes += ch.StripedBytes
	}
	if colBytes != st.DataBytes {
		t.Fatalf("collector bytes %d != Stats bytes %d", colBytes, st.DataBytes)
	}
}

// TestServeEndpoints starts the observability endpoint and checks all
// three surfaces respond: Prometheus text, expvar JSON, and pprof.
func TestServeEndpoints(t *testing.T) {
	if _, err := Serve("127.0.0.1:0"); err == nil {
		t.Fatal("Serve accepted zero collectors")
	}

	const nch = 2
	col := NewNamedCollector("servetest", nch)
	col.SetTracer(NewTracer(TracerConfig{Sample: 1}))
	wins := NewWindows(col, WindowConfig{Tick: time.Hour, Spans: []time.Duration{time.Hour}})
	g := channel.NewGroup(nch, channel.Impairments{})
	tx, err := NewSender(g.Senders(), Config{
		Quanta:    UniformQuanta(nch, 1500),
		Markers:   MarkerPolicy{Every: 2, Position: 0},
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tx.SendBytes(make([]byte, 700)); err != nil {
			t.Fatal(err)
		}
	}
	// Complete some lifecycles on the receive side so the trace export
	// and the latency histograms have content.
	for key := uint64(0); key < 100; key++ {
		col.TraceArrive(key, int(key%nch))
		col.TraceDeliver(key, 0)
	}
	// Fold the rollup so the windowed gauges and the health payload have
	// a published snapshot to serve.
	wins.Fold()

	srv, err := Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`stripe_channel_bytes_total{session="servetest",channel="0",dir="tx"}`,
		`stripe_markers_total{session="servetest"`,
		`stripe_resync_events_total{session="servetest"`,
		`stripe_fairness_discrepancy_bytes{session="servetest"}`,
		`stripe_fairness_bound_bytes{session="servetest"}`,
		`stripe_latency_reseq_nanoseconds_bucket{session="servetest",le="+Inf"} 100`,
		`stripe_latency_reseq_nanoseconds_count{session="servetest"} 100`,
		`stripe_trace_sample_period{session="servetest"} 1`,
		`stripe_invariant_violations_total{session="servetest"} 0`,
		`stripe_channel_health{session="servetest",channel="0"}`,
		`stripe_channel_bytes_rate{session="servetest",channel="0",dir="tx"}`,
		`stripe_credit_stall_ratio{session="servetest"}`,
		`stripe_window_covered_seconds{session="servetest"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q\n%s", want, body)
		}
	}

	code, body = get("/debug/stripe/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/stripe/trace status %d", code)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/debug/stripe/trace not valid JSON: %v\n%s", err, body)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("/debug/stripe/trace has no events despite completed lifecycles")
	}
	// A second fetch exercises the server's reused dedup-set/buffer path
	// and must return the same shape.
	code, body2 := get("/debug/stripe/trace")
	if code != http.StatusOK {
		t.Fatalf("second /debug/stripe/trace status %d", code)
	}
	var tr2 struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body2), &tr2); err != nil {
		t.Fatalf("second /debug/stripe/trace not valid JSON: %v", err)
	}
	if len(tr2.TraceEvents) != len(tr.TraceEvents) {
		t.Fatalf("trace export not stable across fetches: %d then %d events",
			len(tr.TraceEvents), len(tr2.TraceEvents))
	}

	code, body = get("/debug/stripe/health")
	if code != http.StatusOK {
		t.Fatalf("/debug/stripe/health status %d", code)
	}
	var hr struct {
		Sessions []HealthReport
	}
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("/debug/stripe/health not valid JSON: %v\n%s", err, body)
	}
	if len(hr.Sessions) != 1 {
		t.Fatalf("/debug/stripe/health has %d sessions, want 1", len(hr.Sessions))
	}
	if h := hr.Sessions[0]; h.Session != "servetest" || h.Channels != nch || h.ActiveChannels != nch {
		t.Fatalf("health report wrong identity: %+v", h)
	}
	if h := hr.Sessions[0]; h.Windows == nil || len(h.Windows.Health) != nch {
		t.Fatalf("health report missing windowed rollup: %+v", h.Windows)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, "stripe.servetest") {
		t.Fatalf("/debug/vars missing published collector:\n%s", body)
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestHealthEndpointBareCollector pins the health handler's contract
// for a collector with no windowed rollup and no peer view attached:
// HTTP 200, Content-Type application/json, and a well-formed report
// whose optional sections are simply absent — never a panic or a
// malformed payload.
func TestHealthEndpointBareCollector(t *testing.T) {
	col := NewNamedCollector("bare", 2)
	srv, err := Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/stripe/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var hr struct {
		Sessions []HealthReport
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatalf("health payload not valid JSON: %v", err)
	}
	if len(hr.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(hr.Sessions))
	}
	h := hr.Sessions[0]
	if h.Session != "bare" || h.Channels != 2 {
		t.Fatalf("report identity wrong: %+v", h)
	}
	if h.Windows != nil {
		t.Fatalf("Windows section present without a rollup: %+v", h.Windows)
	}
	if h.Peer != nil {
		t.Fatalf("Peer section present without a peer view: %+v", h.Peer)
	}
}

// TestHealthEndpointPeerSection checks the peer section end to end:
// a collector with an attached PeerView that has applied one telemetry
// block serves it under Peer.
func TestHealthEndpointPeerSection(t *testing.T) {
	col := NewNamedCollector("peered", 2)
	pv := NewPeerView(2)
	col.SetPeerView(pv)
	pv.Apply(packet.TelemetryBlock{
		Seq: 1, AtNs: 1e9, Buffered: 3, MaxBuffered: 12,
		Channels: []packet.TelemetryChannel{
			{Delivered: 9000, Lost: 1000, MarkerTxNs: 100, MarkerRxNs: 2100},
			{Delivered: 10000, MarkerTxNs: 100, MarkerRxNs: 150},
		},
	}, 2e9)

	srv, err := Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/stripe/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr struct {
		Sessions []HealthReport
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatalf("health payload not valid JSON: %v", err)
	}
	if len(hr.Sessions) != 1 || hr.Sessions[0].Peer == nil {
		t.Fatalf("peer section missing: %+v", hr.Sessions)
	}
	p := hr.Sessions[0].Peer
	if p.Seq != 1 || len(p.Channels) != 2 {
		t.Fatalf("peer snapshot wrong: %+v", p)
	}
	if p.Channels[0].LossFrac <= p.Channels[1].LossFrac {
		t.Fatalf("peer loss not surfaced: %+v", p.Channels)
	}
	if p.Channels[0].OneWayDelayNs <= p.Channels[1].OneWayDelayNs {
		t.Fatalf("one-way delay estimates not surfaced: %+v", p.Channels)
	}

	// The Prometheus surface carries the matching peer gauges.
	mresp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`stripe_peer_channel_loss_rate{session="peered",channel="0"}`,
		`stripe_peer_reseq_occupancy{session="peered"}`,
		`stripe_channel_oneway_delay_nanoseconds{session="peered",channel="1"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestSessionCollectorWiring runs a duplex session pair with a
// collector on each end and checks the observability surface the
// Session exposes: snapshots mirror the transmit stats, flow-control
// pressure shows up as blocked sends and credit-stall time, and the
// receive side counts deliveries.
func TestSessionCollectorWiring(t *testing.T) {
	const nch = 2
	colA := NewNamedCollector("a", nch)
	colB := NewNamedCollector("b", nch)

	mkChans := func() ([]*LocalChannel, []ChannelSender) {
		chans := make([]*LocalChannel, nch)
		senders := make([]ChannelSender, nch)
		for i := range chans {
			chans[i] = NewLocalChannel(LocalChannelConfig{Seed: int64(i)})
			senders[i] = chans[i]
		}
		return chans, senders
	}
	abChans, abSenders := mkChans()
	baChans, baSenders := mkChans()

	cfg := SessionConfig{
		Config: Config{
			Quanta:    UniformQuanta(nch, 1500),
			Markers:   MarkerPolicy{Every: 2, Position: 0},
			Collector: colA,
		},
		// A window smaller than the traffic volume guarantees the
		// sender stalls on credits at least once.
		CreditWindow:   4096,
		MarkerInterval: time.Millisecond,
	}
	bcfg := cfg
	bcfg.Collector = colB

	a, err := NewSession(abSenders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(baSenders, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	pump := func(chans []*LocalChannel, dst *Session) {
		for i, ch := range chans {
			go func(i int, ch *LocalChannel) {
				for p := range ch.Out() {
					dst.Arrive(i, p)
				}
			}(i, ch)
		}
	}
	pump(abChans, b)
	pump(baChans, a)

	const n = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.SendBytes(make([]byte, 500)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := 0
	for got < n {
		if p := b.Recv(); p == nil {
			t.Fatal("session closed early")
		} else if p.Kind == KindData {
			got++
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	sa := a.Snapshot()
	st := a.SendStats()
	var colPkts int64
	for _, ch := range sa.Channels {
		colPkts += ch.StripedPackets
	}
	if colPkts != st.DataPackets || st.DataPackets != n {
		t.Fatalf("collector %d / stats %d / want %d data packets", colPkts, st.DataPackets, n)
	}
	// 200 * 500 B through a 2-channel 4 KiB-per-channel window must
	// have exhausted credits at least once.
	var blocked int64
	for _, ch := range sa.Channels {
		blocked += ch.BlockedSends
	}
	if blocked == 0 {
		t.Fatal("no blocked sends despite credit window smaller than traffic")
	}
	if sa.CreditStall == 0 {
		t.Fatal("no credit-stall time recorded")
	}

	sb := colB.Snapshot()
	var delivered int64
	for _, ch := range sb.Channels {
		delivered += ch.DeliveredPackets
	}
	if delivered != n {
		t.Fatalf("receive collector counted %d deliveries, want %d", delivered, n)
	}
	if rs := b.Stats(); rs.Delivered != n {
		t.Fatalf("Stats().Delivered = %d, want %d", rs.Delivered, n)
	}

	a.Close()
	b.Close()
	for _, ch := range abChans {
		ch.Close()
	}
	for _, ch := range baChans {
		ch.Close()
	}
}
