package stripe

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startPumps wires each channel's output into the receiver.
func startPumps(chans []*LocalChannel, rx *Receiver) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i, ch := range chans {
		wg.Add(1)
		go func(i int, ch *LocalChannel) {
			defer wg.Done()
			for p := range ch.Out() {
				rx.Arrive(i, p)
			}
		}(i, ch)
	}
	return &wg
}

// TestEndToEndFIFO drives the public API over four skewed in-process
// channels and checks exact FIFO delivery.
func TestEndToEndFIFO(t *testing.T) {
	const nch = 4
	cfg := Config{Quanta: UniformQuanta(nch, 1500)}
	chans := make([]*LocalChannel, nch)
	senders := make([]ChannelSender, nch)
	for i := range chans {
		chans[i] = NewLocalChannel(LocalChannelConfig{
			Delay:  time.Duration(i) * 2 * time.Millisecond, // per-channel skew
			Jitter: time.Millisecond,
			Seed:   int64(i),
		})
		senders[i] = chans[i]
	}
	tx, err := NewSender(senders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(nch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pumps := startPumps(chans, rx)

	const n = 400
	go func() {
		for i := 0; i < n; i++ {
			// ~1 KB payloads so rounds (and marker batches) actually
			// elapse with 1500-byte quanta.
			payload := make([]byte, 1024)
			copy(payload, fmt.Sprintf("msg-%04d", i))
			if err := tx.SendBytes(payload); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < n; i++ {
		done := make(chan *Packet, 1)
		go func() { done <- rx.Recv() }()
		select {
		case p := <-done:
			if p == nil {
				t.Fatalf("receiver closed at packet %d", i)
			}
			if want := fmt.Sprintf("msg-%04d", i); string(p.Payload[:len(want)]) != want {
				t.Fatalf("packet %d = %q, want %q", i, p.Payload[:len(want)], want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for packet %d", i)
		}
	}
	for _, ch := range chans {
		ch.Close()
	}
	pumps.Wait()
	st := tx.Stats()
	if st.DataPackets != n || st.DataBytes == 0 {
		t.Fatalf("sender stats: %d packets, %d bytes", st.DataPackets, st.DataBytes)
	}
	if st.Markers == 0 {
		t.Fatal("default config sent no markers")
	}
}

// TestLossyChannelsQuasiFIFO checks the public API under loss: all
// surviving packets are delivered and the post-loss tail is in order.
func TestLossyChannelsQuasiFIFO(t *testing.T) {
	const nch = 2
	cfg := Config{
		Quanta:  UniformQuanta(nch, 1500),
		Markers: MarkerPolicy{Every: 2, Position: 0},
	}
	chans := make([]*LocalChannel, nch)
	senders := make([]ChannelSender, nch)
	for i := range chans {
		chans[i] = NewLocalChannel(LocalChannelConfig{Loss: 0.2, Seed: int64(i + 7)})
		senders[i] = chans[i]
	}
	tx, err := NewSender(senders, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(nch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pumps := startPumps(chans, rx)

	const n = 2000
	for i := 0; i < n; i++ {
		if err := tx.SendBytes(make([]byte, 500)); err != nil {
			t.Fatal(err)
		}
	}
	// Give the pipeline a moment, then drain.
	deadline := time.Now().Add(5 * time.Second)
	var got []*Packet
	for time.Now().Before(deadline) {
		if p, ok := rx.TryRecv(); ok {
			got = append(got, p)
			continue
		}
		if rx.Buffered() == 0 && len(got) > n*6/10 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	got = append(got, rx.Drain()...)
	frac := float64(len(got)) / n
	if frac < 0.7 || frac > 0.95 {
		t.Fatalf("delivered fraction %.3f under 20%% loss", frac)
	}
	if st := rx.Stats(); st.Resyncs == 0 {
		t.Fatal("no marker resynchronizations under loss")
	}
	for _, ch := range chans {
		ch.Close()
	}
	pumps.Wait()
}

// TestSequenceModeOverUDP exercises the with-header variant over real
// loopback UDP channels.
func TestSequenceModeOverUDP(t *testing.T) {
	const nch = 2
	cfg := Config{
		Quanta: UniformQuanta(nch, 1500),
		Mode:   ModeSequence,
		AddSeq: true,
	}
	sendEnds := make([]ChannelSender, nch)
	recvEnds := make([]*UDPChannel, nch)
	for i := 0; i < nch; i++ {
		s, r, err := NewUDPChannelPair()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		defer r.Close()
		sendEnds[i] = s
		recvEnds[i] = r
	}
	tx, err := NewSender(sendEnds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(nch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, rc := range recvEnds {
		wg.Add(1)
		go func(i int, rc *UDPChannel) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := rc.ReadPacket(100 * time.Millisecond)
				if err != nil || p == nil {
					continue
				}
				rx.Arrive(i, p)
			}
		}(i, rc)
	}

	const n = 200
	for i := 0; i < n; i++ {
		if err := tx.SendBytes([]byte(fmt.Sprintf("udp-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		done := make(chan *Packet, 1)
		go func() { done <- rx.Recv() }()
		select {
		case p := <-done:
			if want := fmt.Sprintf("udp-%03d", i); string(p.Payload) != want {
				t.Fatalf("packet %d = %q, want %q", i, p.Payload, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at packet %d", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTCPChannelsAggregate exercises striping across two real TCP
// connections.
func TestTCPChannelsAggregate(t *testing.T) {
	const nch = 2
	cfg := Config{Quanta: UniformQuanta(nch, 32*1024)}
	sendEnds := make([]ChannelSender, nch)
	recvEnds := make([]*TCPChannel, nch)
	for i := 0; i < nch; i++ {
		s, r, err := NewTCPChannelPair()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		defer r.Close()
		sendEnds[i] = s
		recvEnds[i] = r
	}
	tx, err := NewSender(sendEnds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(nch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 300
	for i, rc := range recvEnds {
		wg.Add(1)
		go func(i int, rc *TCPChannel) {
			defer wg.Done()
			for {
				p, err := rc.ReadPacket(2 * time.Second)
				if err != nil || p == nil {
					return
				}
				rx.Arrive(i, p)
			}
		}(i, rc)
	}
	payload := make([]byte, 8*1024)
	go func() {
		for i := 0; i < n; i++ {
			payload[0] = byte(i)
			if err := tx.SendBytes(append([]byte(nil), payload...)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		p := rx.Recv()
		if p == nil {
			t.Fatalf("receiver closed early at %d", i)
		}
		if p.Payload[0] != byte(i) {
			t.Fatalf("packet %d out of order (tag %d)", i, p.Payload[0])
		}
	}
	wg.Wait()
}

// TestConfigValidation covers public constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := NewSender(nil, Config{Quanta: []int64{1}}); err == nil {
		t.Error("mismatched channels accepted")
	}
	if _, err := NewReceiver(3, Config{Quanta: []int64{1, 2}}); err == nil {
		t.Error("mismatched receiver accepted")
	}
	if _, err := NewSender(make([]ChannelSender, 2), Config{Quanta: []int64{0, 5}}); err == nil {
		t.Error("zero quantum accepted")
	}
}

// TestNoMarkersDisables checks the NoMarkers sentinel.
func TestNoMarkersDisables(t *testing.T) {
	chans := []*LocalChannel{NewLocalChannel(LocalChannelConfig{}), NewLocalChannel(LocalChannelConfig{})}
	defer chans[0].Close()
	defer chans[1].Close()
	tx, err := NewSender([]ChannelSender{chans[0], chans[1]}, Config{
		Quanta:  UniformQuanta(2, 1000),
		Markers: MarkerPolicy{Every: NoMarkers},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tx.SendBytes(make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	if markers := tx.Stats().Markers; markers != 0 {
		t.Fatalf("NoMarkers config sent %d markers", markers)
	}
}

// TestSchemesEndToEnd drives each public striping scheme through the
// full pipeline and checks FIFO delivery plus the expected load split.
func TestSchemesEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cfg    Config
		checks func(t *testing.T, bytes [2]int64)
	}{
		{
			name: "SRR",
			cfg:  Config{Quanta: []int64{3000, 1500}},
			checks: func(t *testing.T, bytes [2]int64) {
				ratio := float64(bytes[0]) / float64(bytes[1])
				if ratio < 1.8 || ratio > 2.2 {
					t.Fatalf("SRR byte ratio %.2f, want ~2", ratio)
				}
			},
		},
		{
			name: "GRR",
			cfg:  Config{Scheme: SchemeGRR, Quanta: []int64{2, 1}},
			checks: func(t *testing.T, bytes [2]int64) {
				if bytes[0] <= bytes[1] {
					t.Fatalf("GRR split %v not 2:1-ish by packets", bytes)
				}
			},
		},
		{
			name:   "RR",
			cfg:    Config{Scheme: SchemeRR, Quanta: []int64{1, 1}},
			checks: func(t *testing.T, bytes [2]int64) {},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			chans := []*LocalChannel{
				NewLocalChannel(LocalChannelConfig{}),
				NewLocalChannel(LocalChannelConfig{}),
			}
			tx, err := NewSender([]ChannelSender{chans[0], chans[1]}, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			rx, err := NewReceiver(2, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			pumps := startPumps(chans, rx)
			const n = 300
			go func() {
				for i := 0; i < n; i++ {
					payload := make([]byte, 500+(i%2)*500)
					payload[0] = byte(i)
					payload[1] = byte(i >> 8)
					if err := tx.SendBytes(payload); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			var bytes [2]int64
			for i := 0; i < n; i++ {
				p := rx.Recv()
				if p == nil {
					t.Fatalf("closed at %d", i)
				}
				if got := int(p.Payload[0]) | int(p.Payload[1])<<8; got != i {
					t.Fatalf("packet %d arrived as %d (scheme %s broke FIFO)", i, got, tc.name)
				}
			}
			for c, ch := range chans {
				st := ch.live.Stats()
				bytes[c] = st.SentBytes
				ch.Close()
			}
			pumps.Wait()
			tc.checks(t, bytes)
		})
	}
}

// TestSentOnObservesFairness drives the public fairness observability:
// per-channel byte counters stay within the Theorem 3.2 bound of the
// proportional split.
func TestSentOnObservesFairness(t *testing.T) {
	chans := []*LocalChannel{NewLocalChannel(LocalChannelConfig{}), NewLocalChannel(LocalChannelConfig{})}
	defer chans[0].Close()
	defer chans[1].Close()
	quanta := []int64{3000, 1000}
	tx, err := NewSender([]ChannelSender{chans[0], chans[1]}, Config{Quanta: quanta})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 4000; i++ {
		n := 100 + (i*271)%900
		total += int64(n)
		if err := tx.SendBytes(make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	_, b0 := tx.SentOn(0)
	_, b1 := tx.SentOn(1)
	if b0+b1 != total {
		t.Fatalf("per-channel bytes %d+%d != total %d", b0, b1, total)
	}
	ratio := float64(b0) / float64(b1)
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("byte ratio %.3f, want ~3 for 3:1 quanta", ratio)
	}
}

// TestPublicSurface exercises the remaining public methods: sender
// reset, receiver close semantics, non-blocking channel reads, session
// manual markers and credit introspection, and wrapping a raw net.Conn.
func TestPublicSurface(t *testing.T) {
	// Sender.Reset + Receiver recovery through the public API.
	chans := []*LocalChannel{NewLocalChannel(LocalChannelConfig{}), NewLocalChannel(LocalChannelConfig{})}
	cfg := Config{Quanta: UniformQuanta(2, 1000)}
	tx, err := NewSender([]ChannelSender{chans[0], chans[1]}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pumps := startPumps(chans, rx)
	pre := make([]byte, 1000)
	pre[0] = 0xEE
	tx.SendBytes(pre) // in flight when the reset is cut; delivered first
	if err := tx.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		payload := make([]byte, 1000)
		payload[0] = byte(i)
		tx.SendBytes(payload)
	}
	if p := rx.Recv(); p == nil || p.Payload[0] != 0xEE {
		t.Fatalf("pre-reset packet = %v", p)
	}
	for i := 0; i < 4; i++ {
		p := rx.Recv()
		if p == nil || int(p.Payload[0]) != i {
			t.Fatalf("post-reset packet %d = %v", i, p)
		}
	}
	// Close unblocks a pending Recv with nil.
	done := make(chan *Packet, 1)
	go func() { done <- rx.Recv() }()
	time.Sleep(20 * time.Millisecond)
	rx.Close()
	select {
	case p := <-done:
		if p != nil {
			t.Fatalf("Recv after close = %v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Recv")
	}
	for _, ch := range chans {
		ch.Close()
	}
	pumps.Wait()

	// LocalChannel.Recv non-blocking path.
	lc := NewLocalChannel(LocalChannelConfig{})
	if _, ok := lc.Recv(); ok {
		t.Fatal("Recv on idle channel returned a packet")
	}
	lc.Send(Data([]byte("x")))
	deadline := time.Now().Add(time.Second)
	for {
		if p, ok := lc.Recv(); ok {
			if string(p.Payload) != "x" {
				t.Fatalf("payload %q", p.Payload)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("packet never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	lc.Close()

	// NewTCPChannel wraps an arbitrary net.Conn.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tc := NewTCPChannel(dial)
	defer tc.Close()
	rcConn := <-accepted
	rc := NewTCPChannel(rcConn)
	defer rc.Close()
	if err := tc.Send(Data([]byte("over-a-raw-conn"))); err != nil {
		t.Fatal(err)
	}
	p, err := rc.ReadPacket(2 * time.Second)
	if err != nil || p == nil || string(p.Payload) != "over-a-raw-conn" {
		t.Fatalf("ReadPacket = %v %v", p, err)
	}
}

// TestSessionManualMarkersAndCredits covers EmitMarkers, TryRecv and
// CreditRemaining on the session surface.
func TestSessionManualMarkersAndCredits(t *testing.T) {
	cfg := SessionConfig{
		Config:         Config{Quanta: UniformQuanta(2, 1500), Markers: MarkerPolicy{Every: 2, Position: 0}},
		CreditWindow:   4096,
		MarkerInterval: -1, // manual only
	}
	a, b, cleanup := wireSessions(t, 2, cfg)
	defer cleanup()

	if a.CreditRemaining(0) != 4096 {
		t.Fatalf("initial credit %d", a.CreditRemaining(0))
	}
	if err := a.SendBytes(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := a.CreditRemaining(0) + a.CreditRemaining(1); got != 2*4096-1000 {
		t.Fatalf("credit after send = %d", got)
	}
	// Manual marker batch from b carries grants; wait for the data and
	// then for a's credit to refresh after b consumes it.
	deadline := time.Now().Add(3 * time.Second)
	var got *Packet
	for time.Now().Before(deadline) && got == nil {
		if p, ok := b.TryRecv(); ok {
			got = p
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got == nil || got.Len() != 1000 {
		t.Fatalf("b never received the packet: %v", got)
	}
	b.EmitMarkers()
	for time.Now().Before(deadline) {
		if a.CreditRemaining(0)+a.CreditRemaining(1) == 2*4096 {
			return // grant refreshed via the manual marker
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("credits never refreshed; remaining %d+%d",
		a.CreditRemaining(0), a.CreditRemaining(1))
}
