package stripe

import (
	"errors"
	"sync"

	"stripe/internal/channel"
	"stripe/internal/core"
	"stripe/internal/packet"
	"stripe/internal/sched"
)

// Packet is the unit of striping. Payloads are carried verbatim in the
// default (no header) mode.
type Packet = packet.Packet

// Data builds a data packet around payload without copying.
func Data(payload []byte) *Packet { return packet.NewData(payload) }

// GetPacket returns a zeroed packet from the process-wide packet pool.
// Its payload has length zero but keeps the capacity of its previous
// life; see GetPacketSized for a sized one. Hand packets back with
// Packet.Release once done (optional — unreleased packets are ordinary
// garbage), and never Release a packet whose payload aliases memory you
// keep (such as one built with Data).
func GetPacket() *Packet { return packet.Get() }

// GetPacketSized returns a pooled data packet whose payload has length
// n, with unspecified contents. This is the allocation-free way to feed
// SendBatch in steady state: a released packet donates its payload
// backing array to the pool, so once capacities stabilize Get/Release
// cycles allocate nothing.
func GetPacketSized(n int) *Packet { return packet.GetSized(n) }

// Kinds, for inspecting packets read directly off channels.
const (
	KindData      = packet.Data
	KindMarker    = packet.Marker
	KindCredit    = packet.Credit
	KindReset     = packet.Reset
	KindMember    = packet.Member
	KindTelemetry = packet.Telemetry
)

// MemberState is one channel slot's position in the membership
// lifecycle (active → draining → removed, and back via AddChannel).
type MemberState = core.MemberState

// Membership lifecycle states.
const (
	MemberActive   = core.MemberActive
	MemberDraining = core.MemberDraining
	MemberRemoved  = core.MemberRemoved
)

// ErrNoActiveChannels is returned by Send once every channel has been
// removed from the live set.
var ErrNoActiveChannels = core.ErrNoActiveChannels

// ErrLastChannel is returned when a removal would empty the live set.
var ErrLastChannel = core.ErrLastChannel

// ChannelSendError wraps a transport failure with the channel it
// occurred on; unwrap with errors.As to react per channel.
type ChannelSendError = core.ChannelSendError

// MarkerPolicy controls periodic synchronization markers; see
// core.MarkerPolicy. Every is in rounds; Position is the channel index
// the round-robin pointer rests on when the batch is cut.
type MarkerPolicy = core.MarkerPolicy

// Mode selects the receiver discipline.
type Mode = core.Mode

// Receive disciplines.
const (
	// ModeLogical is the paper's scheme: per-channel buffering plus
	// simulation of the sender automaton. Quasi-FIFO under loss.
	ModeLogical = core.ModeLogical
	// ModeNone delivers in physical arrival order.
	ModeNone = core.ModeNone
	// ModeSequence resequences on explicit sequence numbers; requires
	// Config.AddSeq on the sender.
	ModeSequence = core.ModeSequence
)

// ChannelSender is the transmit side of one FIFO channel.
type ChannelSender = channel.Sender

// ChannelReceiver is the receive side of one FIFO channel.
type ChannelReceiver = channel.Receiver

// UniformQuanta returns n equal quanta of q bytes each.
func UniformQuanta(n int, q int64) []int64 { return sched.UniformQuanta(n, q) }

// QuantaForRates derives quanta proportional to channel bandwidths with
// the smallest at least minQuantum (set it to your maximum packet size).
func QuantaForRates(rates []float64, minQuantum int64) ([]int64, error) {
	return sched.QuantaForRates(rates, minQuantum)
}

// Scheme selects the striping discipline.
type Scheme uint8

const (
	// SchemeSRR is Surplus Round Robin: byte-denominated quanta, fair
	// with variable-length packets. The paper's scheme and the default.
	SchemeSRR Scheme = iota
	// SchemeRR is ordinary round robin: one packet per channel per
	// round, ignoring sizes (Quanta entries are ignored beyond their
	// count). A baseline.
	SchemeRR
	// SchemeGRR is generalized round robin: Quanta are per-round packet
	// counts approximating a bandwidth ratio. A baseline.
	SchemeGRR
)

// Config configures a striped connection. Sender and receiver must use
// identical Scheme, Quanta and Markers.
type Config struct {
	// Scheme is the striping discipline (default SchemeSRR).
	Scheme Scheme
	// Quanta are the per-channel SRR quanta in bytes, proportional to
	// channel bandwidth; each should be at least the maximum packet
	// size. For SchemeGRR they are per-round packet counts instead.
	// Required.
	Quanta []int64
	// Markers configures periodic resynchronization markers. The zero
	// value sends markers every 4 rounds at the round boundary, which
	// suits most uses; set Every to NoMarkers to disable.
	Markers MarkerPolicy
	// Mode is the receive discipline (default ModeLogical).
	Mode Mode
	// AddSeq stamps explicit sequence numbers on data packets — the
	// "with header" variant, required for ModeSequence.
	AddSeq bool
	// MaxBuffered caps the receiver's total buffered packets, making
	// resequencer memory hard-bounded: above the cap ordering is
	// abandoned for the backlog until it halves, and above twice the cap
	// arrivals are dropped like channel loss. Zero selects
	// DefaultMaxBuffered in sessions with flow control enabled (and
	// unbounded elsewhere); negative means explicitly unbounded.
	MaxBuffered int
	// Collector, when non-nil, receives runtime metrics and protocol
	// events from every engine built with this Config. Size it with
	// NewCollector(len(Quanta)). Expose it with Serve or read it with
	// Snapshot. A nil Collector costs one pointer test per packet.
	Collector *Collector
}

// NoMarkers disables periodic markers when assigned to Markers.Every.
const NoMarkers = ^uint64(0)

// DefaultMaxBuffered derives a principled resequencer buffer cap from
// the flow-control configuration: n channels, a per-channel credit
// window of window bytes, and the configured quanta.
//
// FCVC flow control already bounds what the cap must hold: the peer can
// have at most window un-granted bytes outstanding per channel, so the
// resequencer never legitimately buffers more than n·window payload
// bytes. Converting bytes to a packet count needs a floor on packet
// size; quanta are calibrated to the maximum packet (each quantum ≥ max
// packet size), and the paper's workloads put typical packets within a
// small factor of the maximum, so min(quanta)/8 is used as the floor —
// tiny-packet floods beyond that are exactly the pathology the cap
// exists to bound. The result is
//
//	cap = 8 · n · ⌈window / min(quanta)⌉
//
// with a floor of 64 packets so small windows never cripple reordering
// tolerance. Returns 0 (unbounded) when window or the quanta are
// non-positive. See DESIGN.md "Bounded resequencer memory".
func DefaultMaxBuffered(n int, window int64, quanta []int64) int {
	if n <= 0 || window <= 0 {
		return 0
	}
	minQ := int64(0)
	for _, q := range quanta {
		if q > 0 && (minQ == 0 || q < minQ) {
			minQ = q
		}
	}
	if minQ == 0 {
		return 0
	}
	per := (window + minQ - 1) / minQ
	cap64 := 8 * int64(n) * per
	if cap64 < 64 {
		return 64
	}
	return int(cap64)
}

func (c Config) sched() (sched.RoundBased, error) {
	switch c.Scheme {
	case SchemeRR:
		return sched.NewRR(len(c.Quanta))
	case SchemeGRR:
		return sched.NewGRR(c.Quanta)
	default:
		return sched.NewSRR(c.Quanta)
	}
}

func (c Config) markers() MarkerPolicy {
	m := c.Markers
	if m.Every == 0 {
		m = MarkerPolicy{Every: 4, Position: 0}
	} else if m.Every == NoMarkers {
		m = MarkerPolicy{}
	}
	return m
}

// Sender stripes a FIFO packet stream across the channels. It is safe
// for concurrent use.
type Sender struct {
	mu  sync.Mutex
	st  *core.Striper
	col *Collector
}

// NewSender builds the sending half over the given channels.
func NewSender(channels []ChannelSender, cfg Config) (*Sender, error) {
	if len(cfg.Quanta) != len(channels) {
		return nil, errors.New("stripe: Quanta and channels must have equal length")
	}
	s, err := cfg.sched()
	if err != nil {
		return nil, err
	}
	st, err := core.NewStriper(core.StriperConfig{
		Sched:    s,
		Channels: channels,
		Markers:  cfg.markers(),
		AddSeq:   cfg.AddSeq,
		Obs:      cfg.Collector,
	})
	if err != nil {
		return nil, err
	}
	return &Sender{st: st, col: cfg.Collector}, nil
}

// Send stripes one packet. The payload is transmitted unmodified.
func (s *Sender) Send(p *Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Send(p)
}

// SendBytes stripes a payload.
func (s *Sender) SendBytes(payload []byte) error { return s.Send(Data(payload)) }

// SendBatch stripes pkts in FIFO order, taking the sender lock once and
// flushing maximal same-channel runs in single channel writes. It
// returns the number of packets sent; n < len(pkts) only alongside a
// non-nil error, and pkts[n:] were not sent.
func (s *Sender) SendBatch(pkts []*Packet) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.SendBatch(pkts)
}

// EmitMarkers cuts a marker batch immediately. Call it from a timer if
// the stream can go idle, so a stalled sender still resynchronizes the
// receiver after loss.
func (s *Sender) EmitMarkers() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.EmitMarkers()
}

// Reset broadcasts a reset and reinitialises the striping automaton;
// the receiver discards stale in-flight traffic and both ends restart
// in the common start state.
func (s *Sender) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Reset()
}

// Stats reports the sender's protocol counters, including the
// per-channel data load (the observable half of the fairness bound).
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Stats()
}

// Snapshot returns the attached Collector's metrics (the zero Snapshot
// when no Collector was configured). It briefly takes the sender lock
// to flush the batched transmit counters first, so the snapshot is
// exact as of this call.
func (s *Sender) Snapshot() Snapshot {
	if s.col == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	s.st.SyncObs()
	s.mu.Unlock()
	return s.col.Snapshot()
}

// SentOn reports the data packets and payload bytes striped onto
// channel c — the observable half of the fairness bound.
func (s *Sender) SentOn(c int) (packets, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.SentOn(c)
}

// Receiver reassembles the FIFO stream. Feed it with Arrive (one pump
// per channel is the usual shape) and consume with Recv or TryRecv. It
// is safe for concurrent use.
type Receiver struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rs     *core.Resequencer
	col    *Collector
	closed bool
}

// NewReceiver builds the receiving half for n channels.
func NewReceiver(n int, cfg Config) (*Receiver, error) {
	if len(cfg.Quanta) != n {
		return nil, errors.New("stripe: Quanta must have one entry per channel")
	}
	maxBuf := cfg.MaxBuffered
	if maxBuf < 0 { // explicitly unbounded
		maxBuf = 0
	}
	rcfg := core.ResequencerConfig{Mode: cfg.Mode, N: n, Obs: cfg.Collector, MaxBuffered: maxBuf}
	if cfg.Mode == ModeLogical {
		s, err := cfg.sched()
		if err != nil {
			return nil, err
		}
		rcfg.Sched = s
	}
	rs, err := core.NewResequencer(rcfg)
	if err != nil {
		return nil, err
	}
	r := &Receiver{rs: rs, col: cfg.Collector}
	r.cond = sync.NewCond(&r.mu)
	return r, nil
}

// Arrive hands the receiver a packet physically received on channel c
// (data, marker, or any other kind read off the channel).
func (r *Receiver) Arrive(c int, p *Packet) {
	r.mu.Lock()
	r.rs.Arrive(c, p)
	r.mu.Unlock()
	r.cond.Broadcast()
}

// TryRecv returns the next in-order packet without blocking.
func (r *Receiver) TryRecv() (*Packet, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rs.Next()
}

// Recv blocks until the next in-order packet is available or the
// receiver is closed (nil return).
func (r *Receiver) Recv() *Packet {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if p, ok := r.rs.Next(); ok {
			return p
		}
		if r.closed {
			return nil
		}
		r.cond.Wait()
	}
}

// RecvBatch fills dst with as many consecutive in-order packets as are
// deliverable right now, blocking (like Recv) until at least one is
// available, and returns the number filled. Zero means the receiver was
// closed. The lock is taken once per batch. Packets received off
// netchan transports are pool-backed; Release them once consumed to
// keep the receive path allocation-free.
func (r *Receiver) RecvBatch(dst []*Packet) int {
	if len(dst) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if n := r.rs.NextBatch(dst); n > 0 {
			return n
		}
		if r.closed {
			return 0
		}
		r.cond.Wait()
	}
}

// Close unblocks pending Recv calls; subsequent Recv calls drain
// nothing further once the ordering discipline blocks.
func (r *Receiver) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Drain force-flushes everything still buffered, best effort, at end of
// stream.
func (r *Receiver) Drain() []*Packet {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rs.Drain()
}

// Buffered reports the packets currently held in per-channel buffers.
func (r *Receiver) Buffered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rs.Buffered()
}

// Stats reports the receiver's protocol counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rs.Stats()
}

// Snapshot returns the attached Collector's metrics (the zero Snapshot
// when no Collector was configured).
func (r *Receiver) Snapshot() Snapshot { return r.col.Snapshot() }
