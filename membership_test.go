package stripe

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stripe/internal/netchan"
)

// TestSessionGracefulMembership drives a duplex session pair across
// three channels and gracefully removes and re-adds one mid-transfer
// through the public API. The drain is delimited (the departing link is
// healthy), so delivery must be lossless and FIFO throughout, and the
// credit invariant checkers on both ends must stay silent.
func TestSessionGracefulMembership(t *testing.T) {
	const nch = 3
	const total = 3000

	colA := NewNamedCollector("gm-a", nch)
	colB := NewNamedCollector("gm-b", nch)
	colA.SetChecker(NewChecker())
	colB.SetChecker(NewChecker())

	mk := func(base int64) []*LocalChannel {
		chs := make([]*LocalChannel, nch)
		for i := range chs {
			chs[i] = NewLocalChannel(LocalChannelConfig{
				Delay: 100 * time.Microsecond,
				Seed:  base + int64(i)*7919,
			})
		}
		return chs
	}
	a2b, b2a := mk(11), mk(23)
	txA := make([]ChannelSender, nch)
	txB := make([]ChannelSender, nch)
	for i := 0; i < nch; i++ {
		txA[i], txB[i] = a2b[i], b2a[i]
	}

	cfg := func(col *Collector) SessionConfig {
		return SessionConfig{
			Config:         Config{Quanta: UniformQuanta(nch, 1500), Mode: ModeLogical, Collector: col},
			CreditWindow:   16 * 1024,
			MarkerInterval: 2 * time.Millisecond,
		}
	}
	a, err := NewSession(txA, cfg(colA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(txB, cfg(colB))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < nch; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for p := range a2b[i].Out() {
				b.Arrive(i, p)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			for p := range b2a[i].Out() {
				a.Arrive(i, p)
			}
		}(i)
	}

	var delivered, fifoBreaks atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := int64(-1)
		for {
			p := b.Recv()
			if p == nil {
				return
			}
			idx := int64(binary.BigEndian.Uint64(p.Payload[:8]))
			if idx <= last {
				fifoBreaks.Add(1)
			}
			last = idx
			delivered.Add(1)
		}
	}()

	for i := 0; i < total; i++ {
		switch i {
		case total / 3:
			if err := a.RemoveChannel(2); err != nil {
				t.Fatal(err)
			}
			if tx, _ := a.ChannelState(2); tx != MemberRemoved {
				t.Fatalf("after RemoveChannel: tx state = %v, want removed", tx)
			}
		case 2 * total / 3:
			if err := a.AddChannel(2, nil); err != nil {
				t.Fatal(err)
			}
			if tx, _ := a.ChannelState(2); tx != MemberActive {
				t.Fatalf("after AddChannel: tx state = %v, want active", tx)
			}
		}
		payload := make([]byte, 200)
		binary.BigEndian.PutUint64(payload, uint64(i))
		if err := a.SendBytes(payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && delivered.Load() < total {
		time.Sleep(time.Millisecond)
	}

	snapA, snapB := a.Snapshot(), b.Snapshot()
	a.Close()
	b.Close()
	for i := 0; i < nch; i++ {
		a2b[i].Close()
		b2a[i].Close()
	}
	wg.Wait()
	<-done

	if got := delivered.Load(); got != total {
		t.Errorf("delivered %d/%d packets; graceful removal must be lossless", got, total)
	}
	if got := fifoBreaks.Load(); got != 0 {
		t.Errorf("%d FIFO violations across the membership changes", got)
	}
	if v := snapA.InvariantViolations + snapB.InvariantViolations; v != 0 {
		t.Errorf("%d invariant violations; membership changes must not leak credits", v)
	}
}

// TestSessionTCPKillMidTransfer stripes a transfer over three real TCP
// connections and kills one cold, mid-transfer. The sender's error
// streak must evict the dead channel, the receiver must retire it and
// keep delivering in order, and the tail of the stream must complete on
// the survivors — the end-to-end version of the paper's claim that the
// protocol degrades gracefully when a physical channel fails.
func TestSessionTCPKillMidTransfer(t *testing.T) {
	const nch = 3
	const killCh = 1
	const total = 3000

	colA := NewNamedCollector("tcp-a", nch)
	colB := NewNamedCollector("tcp-b", nch)
	colA.SetChecker(NewChecker())
	colB.SetChecker(NewChecker())

	mkPairs := func() (tx, rx [nch]*netchan.TCPChannel) {
		for i := 0; i < nch; i++ {
			s, r, err := netchan.TCPPair()
			if err != nil {
				t.Fatal(err)
			}
			tx[i], rx[i] = s, r
		}
		return
	}
	txAB, rxAB := mkPairs()
	txBA, rxBA := mkPairs()

	cfg := func(col *Collector) SessionConfig {
		return SessionConfig{
			Config:         Config{Quanta: UniformQuanta(nch, 1500), Mode: ModeLogical, Collector: col},
			CreditWindow:   16 * 1024,
			MarkerInterval: 2 * time.Millisecond,
			Health:         HealthConfig{EvictAfter: 3},
		}
	}
	sendersA := make([]ChannelSender, nch)
	sendersB := make([]ChannelSender, nch)
	for i := 0; i < nch; i++ {
		sendersA[i], sendersB[i] = txAB[i], txBA[i]
	}
	a, err := NewSession(sendersA, cfg(colA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(sendersB, cfg(colB))
	if err != nil {
		t.Fatal(err)
	}

	// Socket pumps: a read error (the killed connection, or teardown)
	// ends the pump; timeouts just poll again.
	var stop atomic.Bool
	var wg sync.WaitGroup
	pump := func(ch *netchan.TCPChannel, deliver func(*Packet)) {
		defer wg.Done()
		for !stop.Load() {
			p, err := ch.ReadPacket(50 * time.Millisecond)
			if err != nil {
				return
			}
			if p != nil {
				deliver(p)
			}
		}
	}
	for i := 0; i < nch; i++ {
		i := i
		wg.Add(2)
		go pump(rxAB[i], func(p *Packet) { b.Arrive(i, p) })
		go pump(rxBA[i], func(p *Packet) { a.Arrive(i, p) })
	}

	var delivered, fifoBreaks atomic.Int64
	var lastIdx atomic.Int64
	lastIdx.Store(-1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := int64(-1)
		for {
			p := b.Recv()
			if p == nil {
				return
			}
			idx := int64(binary.BigEndian.Uint64(p.Payload[:8]))
			if idx <= last {
				fifoBreaks.Add(1)
			}
			last = idx
			lastIdx.Store(last)
			delivered.Add(1)
		}
	}()

	for i := 0; i < total; i++ {
		if i == total/3 {
			// Kill the connection cold from both ends: writes fail at A,
			// whatever the kernel still buffered is destroyed.
			txAB[killCh].Close()
			rxAB[killCh].Close()
		}
		payload := make([]byte, 200)
		binary.BigEndian.PutUint64(payload, uint64(i))
		if err := a.SendBytes(payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	// The last packet is sent after the eviction settles, over healthy
	// survivors: its delivery is the completion signal.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && lastIdx.Load() != total-1 {
		time.Sleep(time.Millisecond)
	}

	snapA := a.Snapshot()
	stop.Store(true)
	a.Close()
	b.Close()
	for i := 0; i < nch; i++ {
		txAB[i].Close()
		rxAB[i].Close()
		txBA[i].Close()
		rxBA[i].Close()
	}
	wg.Wait()
	<-done

	if got := lastIdx.Load(); got != total-1 {
		t.Fatalf("transfer did not complete on the survivors: last index %d of %d", got, total-1)
	}
	if got := fifoBreaks.Load(); got != 0 {
		t.Errorf("%d FIFO violations after the link kill", got)
	}
	if tx, _ := a.ChannelState(killCh); tx != MemberRemoved {
		t.Errorf("killed channel tx state = %v, want removed (evicted)", tx)
	}
	var evictions int64
	for _, cs := range snapA.Channels {
		evictions += cs.MemberEvictions
	}
	if evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", evictions)
	}
	// Loss is bounded by what the dead connection had in flight; the
	// survivors' share must all arrive.
	if got := delivered.Load(); got < total*2/3 {
		t.Errorf("delivered only %d/%d packets", got, total)
	}
}
